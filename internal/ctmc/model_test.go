package ctmc

import (
	"errors"
	"math"
	"testing"
)

// twoState builds the canonical repairable-component chain:
// Up --λ--> Down --μ--> Up with closed-form π = (μ, λ)/(λ+μ).
func twoState(t *testing.T, lambda, mu float64) (*Model, State, State) {
	t.Helper()
	b := NewBuilder()
	up := b.State("Up")
	down := b.State("Down")
	b.Transition(up, down, lambda)
	b.Transition(down, up, mu)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m, up, down
}

func TestBuilderBasics(t *testing.T) {
	t.Parallel()
	b := NewBuilder()
	a := b.State("A")
	if got := b.State("A"); got != a {
		t.Error("State(\"A\") twice returned different handles")
	}
	c := b.State("C")
	b.Transition(a, c, 1.5)
	b.Transition(a, c, 0.5) // parallel transitions merge
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if m.NumStates() != 2 || m.NumTransitions() != 1 {
		t.Fatalf("states=%d transitions=%d, want 2,1", m.NumStates(), m.NumTransitions())
	}
	if got := m.Rate(a, c); got != 2 {
		t.Errorf("merged rate = %v, want 2", got)
	}
	if got := m.ExitRate(a); got != 2 {
		t.Errorf("ExitRate = %v, want 2", got)
	}
	if m.Name(a) != "A" || m.Name(c) != "C" {
		t.Error("names wrong")
	}
	if m.Name(State(99)) == "" {
		t.Error("out-of-range Name should be diagnostic, not empty")
	}
	if s, err := m.StateByName("C"); err != nil || s != c {
		t.Errorf("StateByName(C) = %v, %v", s, err)
	}
	if _, err := m.StateByName("nope"); !errors.Is(err, ErrNoSuchState) {
		t.Errorf("StateByName(nope) err = %v, want ErrNoSuchState", err)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Parallel()
	t.Run("negative rate", func(t *testing.T) {
		t.Parallel()
		b := NewBuilder()
		a, c := b.State("A"), b.State("C")
		b.Transition(a, c, -1)
		if _, err := b.Build(); !errors.Is(err, ErrBadModel) {
			t.Errorf("err = %v, want ErrBadModel", err)
		}
	})
	t.Run("self loop", func(t *testing.T) {
		t.Parallel()
		b := NewBuilder()
		a := b.State("A")
		b.Transition(a, a, 1)
		if _, err := b.Build(); !errors.Is(err, ErrBadModel) {
			t.Errorf("err = %v, want ErrBadModel", err)
		}
	})
	t.Run("unknown state", func(t *testing.T) {
		t.Parallel()
		b := NewBuilder()
		a := b.State("A")
		b.Transition(a, State(5), 1)
		if _, err := b.Build(); !errors.Is(err, ErrBadModel) {
			t.Errorf("err = %v, want ErrBadModel", err)
		}
	})
	t.Run("empty model", func(t *testing.T) {
		t.Parallel()
		if _, err := NewBuilder().Build(); !errors.Is(err, ErrBadModel) {
			t.Errorf("err = %v, want ErrBadModel", err)
		}
	})
	t.Run("zero rate dropped", func(t *testing.T) {
		t.Parallel()
		b := NewBuilder()
		a, c := b.State("A"), b.State("C")
		b.Transition(a, c, 0)
		b.Transition(a, c, 1)
		b.Transition(c, a, 1)
		m, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		if m.NumTransitions() != 2 {
			t.Errorf("transitions = %d, want 2", m.NumTransitions())
		}
	})
}

func TestGenerator(t *testing.T) {
	t.Parallel()
	m, up, down := twoState(t, 2, 5)
	q := m.Generator()
	if q.At(int(up), int(up)) != -2 || q.At(int(up), int(down)) != 2 {
		t.Errorf("row up = [%v %v], want [-2 2]", q.At(0, 0), q.At(0, 1))
	}
	if q.At(int(down), int(up)) != 5 || q.At(int(down), int(down)) != -5 {
		t.Errorf("row down = [%v %v], want [5 -5]", q.At(1, 0), q.At(1, 1))
	}
	sq, err := m.SparseGenerator()
	if err != nil {
		t.Fatalf("SparseGenerator: %v", err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if sq.At(i, j) != q.At(i, j) {
				t.Errorf("sparse[%d,%d] = %v, dense %v", i, j, sq.At(i, j), q.At(i, j))
			}
		}
	}
}

func TestSteadyStateTwoState(t *testing.T) {
	t.Parallel()
	const lambda, mu = 3.0, 7.0
	m, up, down := twoState(t, lambda, mu)
	for _, method := range []Method{MethodDense, MethodGaussSeidel, MethodPower, MethodAuto} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			t.Parallel()
			pi, err := m.SteadyState(SolveOptions{Method: method})
			if err != nil {
				t.Fatalf("SteadyState(%v): %v", method, err)
			}
			wantUp := mu / (lambda + mu)
			if math.Abs(pi[up]-wantUp) > 1e-9 {
				t.Errorf("pi[up] = %v, want %v", pi[up], wantUp)
			}
			if math.Abs(pi[down]-(1-wantUp)) > 1e-9 {
				t.Errorf("pi[down] = %v, want %v", pi[down], 1-wantUp)
			}
		})
	}
}

func TestSteadyStateNotIrreducible(t *testing.T) {
	t.Parallel()
	b := NewBuilder()
	a, c := b.State("A"), b.State("C")
	b.Transition(a, c, 1) // no way back
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := m.SteadyState(SolveOptions{}); !errors.Is(err, ErrNotIrreducible) {
		t.Errorf("err = %v, want ErrNotIrreducible", err)
	}
}

func TestIsIrreducible(t *testing.T) {
	t.Parallel()
	m, _, _ := twoState(t, 1, 1)
	if !m.IsIrreducible() {
		t.Error("two-state cycle reported reducible")
	}
	b := NewBuilder()
	a, c, d := b.State("A"), b.State("C"), b.State("D")
	b.Transition(a, c, 1)
	b.Transition(c, a, 1)
	b.Transition(a, d, 1) // D is a trap
	m2, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if m2.IsIrreducible() {
		t.Error("chain with trap state reported irreducible")
	}
}

func TestReachable(t *testing.T) {
	t.Parallel()
	b := NewBuilder()
	a, c, d := b.State("A"), b.State("C"), b.State("D")
	b.Transition(a, c, 1)
	b.Transition(c, d, 1)
	b.Transition(d, c, 1)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	r := m.Reachable(a)
	if len(r) != 3 {
		t.Errorf("Reachable(A) = %d states, want 3", len(r))
	}
	r = m.Reachable(c)
	if len(r) != 2 || r[a] {
		t.Errorf("Reachable(C) wrong: %v", r)
	}
}

func TestEntryExitFrequency(t *testing.T) {
	t.Parallel()
	const lambda, mu = 3.0, 7.0
	m, _, down := twoState(t, lambda, mu)
	pi, err := m.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatalf("SteadyState: %v", err)
	}
	downSet := map[State]bool{down: true}
	fIn := m.EntryFrequency(pi, downSet)
	fOut := m.ExitFrequency(pi, downSet)
	want := lambda * mu / (lambda + mu) // = pi_up * lambda
	if math.Abs(fIn-want) > 1e-9 {
		t.Errorf("EntryFrequency = %v, want %v", fIn, want)
	}
	// Flow balance: in == out in steady state.
	if math.Abs(fIn-fOut) > 1e-9 {
		t.Errorf("flow imbalance: in %v, out %v", fIn, fOut)
	}
}

func TestEquivalentRatesTwoStateIdentity(t *testing.T) {
	t.Parallel()
	// For a genuine two-state model, equivalent rates must recover the
	// original λ and μ exactly.
	const lambda, mu = 0.002, 4.0
	m, _, down := twoState(t, lambda, mu)
	pi, err := m.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatalf("SteadyState: %v", err)
	}
	le, me, err := m.EquivalentRates(pi, map[State]bool{down: true})
	if err != nil {
		t.Fatalf("EquivalentRates: %v", err)
	}
	if math.Abs(le-lambda) > 1e-9 {
		t.Errorf("lambda_eq = %v, want %v", le, lambda)
	}
	if math.Abs(me-mu) > 1e-9 {
		t.Errorf("mu_eq = %v, want %v", me, mu)
	}
}

func TestEquivalentRatesPreserveAvailability(t *testing.T) {
	t.Parallel()
	// A 4-state repair model reduced to 2 states must preserve
	// availability: A = μ/(λ+μ) for the reduced chain.
	b := NewBuilder()
	ok := b.State("Ok")
	deg := b.State("Degraded")
	down := b.State("Down")
	repair := b.State("Repair")
	b.Transition(ok, deg, 0.01)
	b.Transition(deg, ok, 2)
	b.Transition(deg, down, 0.05)
	b.Transition(ok, down, 0.001)
	b.Transition(down, repair, 10)
	b.Transition(repair, ok, 0.5)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	pi, err := m.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatalf("SteadyState: %v", err)
	}
	downSet := map[State]bool{down: true, repair: true}
	le, me, err := m.EquivalentRates(pi, downSet)
	if err != nil {
		t.Fatalf("EquivalentRates: %v", err)
	}
	fullAvail := pi[ok] + pi[deg]
	reducedAvail := me / (le + me)
	if math.Abs(fullAvail-reducedAvail) > 1e-12 {
		t.Errorf("availability not preserved: full %v, reduced %v", fullAvail, reducedAvail)
	}
}

func TestEquivalentRatesErrors(t *testing.T) {
	t.Parallel()
	m, _, down := twoState(t, 1, 1)
	if _, _, err := m.EquivalentRates([]float64{1}, map[State]bool{down: true}); !errors.Is(err, ErrBadModel) {
		t.Errorf("short pi: err = %v, want ErrBadModel", err)
	}
}

func TestTransitionsCopy(t *testing.T) {
	t.Parallel()
	m, _, _ := twoState(t, 1, 2)
	trs := m.Transitions()
	trs[0].Rate = 999
	if m.Transitions()[0].Rate == 999 {
		t.Error("Transitions() exposes internal storage")
	}
}

func TestStatesList(t *testing.T) {
	t.Parallel()
	m, _, _ := twoState(t, 1, 2)
	states := m.States()
	if len(states) != 2 || states[0] != 0 || states[1] != 1 {
		t.Errorf("States = %v", states)
	}
}

func TestProbabilityOf(t *testing.T) {
	t.Parallel()
	pi := []float64{0.2, 0.3, 0.5}
	if got := ProbabilityOf(pi, []State{0, 2}); math.Abs(got-0.7) > 1e-15 {
		t.Errorf("ProbabilityOf = %v, want 0.7", got)
	}
	// Out-of-range states are ignored.
	if got := ProbabilityOf(pi, []State{5}); got != 0 {
		t.Errorf("ProbabilityOf(out of range) = %v, want 0", got)
	}
}
