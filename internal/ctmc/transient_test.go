package ctmc

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransientTwoStateClosedForm(t *testing.T) {
	t.Parallel()
	// p_up(t) = μ/(λ+μ) + λ/(λ+μ)·e^{-(λ+μ)t} starting from Up.
	const lambda, mu = 1.5, 4.0
	m, up, _ := twoState(t, lambda, mu)
	p0 := []float64{0, 0}
	p0[up] = 1
	for _, tm := range []float64{0, 0.01, 0.1, 0.5, 1, 3, 10} {
		pt, err := m.Transient(p0, tm, TransientOptions{})
		if err != nil {
			t.Fatalf("Transient(%v): %v", tm, err)
		}
		want := mu/(lambda+mu) + lambda/(lambda+mu)*math.Exp(-(lambda+mu)*tm)
		if math.Abs(pt[up]-want) > 1e-9 {
			t.Errorf("p_up(%v) = %v, want %v", tm, pt[up], want)
		}
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	t.Parallel()
	b := NewBuilder()
	s0, s1, s2 := b.State("0"), b.State("1"), b.State("2")
	b.Transition(s0, s1, 1)
	b.Transition(s1, s2, 2)
	b.Transition(s2, s0, 3)
	b.Transition(s1, s0, 0.5)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	pi, err := m.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatalf("SteadyState: %v", err)
	}
	pt, err := m.Transient([]float64{1, 0, 0}, 200, TransientOptions{})
	if err != nil {
		t.Fatalf("Transient: %v", err)
	}
	for i := range pi {
		if math.Abs(pt[i]-pi[i]) > 1e-8 {
			t.Errorf("pt[%d] = %v, steady %v", i, pt[i], pi[i])
		}
	}
}

func TestTransientAbsorbing(t *testing.T) {
	t.Parallel()
	// Pure death chain: A → B at rate r; p_A(t) = e^{-rt}.
	b := NewBuilder()
	a, bb := b.State("A"), b.State("B")
	b.Transition(a, bb, 2)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	pt, err := m.Transient([]float64{1, 0}, 1.5, TransientOptions{})
	if err != nil {
		t.Fatalf("Transient: %v", err)
	}
	want := math.Exp(-2 * 1.5)
	if math.Abs(pt[0]-want) > 1e-9 {
		t.Errorf("p_A(1.5) = %v, want %v", pt[0], want)
	}
}

func TestTransientValidation(t *testing.T) {
	t.Parallel()
	m, _, _ := twoState(t, 1, 1)
	if _, err := m.Transient([]float64{1}, 1, TransientOptions{}); !errors.Is(err, ErrBadModel) {
		t.Errorf("short p0: err = %v, want ErrBadModel", err)
	}
	if _, err := m.Transient([]float64{1, 0}, -1, TransientOptions{}); !errors.Is(err, ErrBadModel) {
		t.Errorf("negative t: err = %v, want ErrBadModel", err)
	}
}

func TestTransientNoTransitions(t *testing.T) {
	t.Parallel()
	b := NewBuilder()
	b.State("only")
	b.State("other")
	b.Transition(b.State("only"), b.State("other"), 1)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// t=0 must return p0 exactly.
	pt, err := m.Transient([]float64{0.25, 0.75}, 0, TransientOptions{})
	if err != nil {
		t.Fatalf("Transient(0): %v", err)
	}
	if pt[0] != 0.25 || pt[1] != 0.75 {
		t.Errorf("Transient(0) = %v, want p0", pt)
	}
}

// TestTransientProbabilityVector: transient solutions remain probability
// vectors (nonnegative, sum 1) for random chains and times.
func TestTransientProbabilityVector(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		b := NewBuilder()
		states := make([]State, n)
		for i := 0; i < n; i++ {
			states[i] = b.State(string(rune('A' + i)))
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && r.Float64() < 0.6 {
					b.Transition(states[i], states[j], 0.1+3*r.Float64())
				}
			}
		}
		m, err := b.Build()
		if err != nil {
			return false
		}
		p0 := make([]float64, n)
		p0[r.Intn(n)] = 1
		pt, err := m.Transient(p0, 5*r.Float64(), TransientOptions{})
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range pt {
			if v < -1e-12 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIntervalAvailability(t *testing.T) {
	t.Parallel()
	const lambda, mu = 1.0, 9.0
	m, up, _ := twoState(t, lambda, mu)
	p0 := make([]float64, 2)
	p0[up] = 1
	reward := make([]float64, 2)
	reward[up] = 1
	// Closed form: (1/t)∫ p_up = A_ss + (1-A_ss)·(1-e^{-(λ+μ)t})/((λ+μ)t)
	ass := mu / (lambda + mu)
	for _, tm := range []float64{0.1, 1, 5, 1000} {
		got, err := m.IntervalAvailability(p0, tm, reward)
		if err != nil {
			t.Fatalf("IntervalAvailability: %v", err)
		}
		s := lambda + mu
		want := ass + (1-ass)*(1-math.Exp(-s*tm))/(s*tm)
		if math.Abs(got-want) > 1e-8 {
			t.Errorf("IA(%v) = %v, want %v", tm, got, want)
		}
	}
	// t=0 degenerates to instantaneous reward.
	got, err := m.IntervalAvailability(p0, 0, reward)
	if err != nil {
		t.Fatalf("IntervalAvailability(0): %v", err)
	}
	if got != 1 {
		t.Errorf("IA(0) = %v, want 1", got)
	}
	// Validation.
	if _, err := m.IntervalAvailability([]float64{1}, 1, reward); !errors.Is(err, ErrBadModel) {
		t.Errorf("short p0: err = %v", err)
	}
	if _, err := m.IntervalAvailability(p0, -1, reward); !errors.Is(err, ErrBadModel) {
		t.Errorf("negative t: err = %v", err)
	}
}

func TestMeanTimeToAbsorption(t *testing.T) {
	t.Parallel()
	// Sequential chain A→B→C with rates 2 and 4; E[T_A] = 1/2+1/4.
	b := NewBuilder()
	a, bb, c := b.State("A"), b.State("B"), b.State("C")
	b.Transition(a, bb, 2)
	b.Transition(bb, c, 4)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mtta, err := m.MeanTimeToAbsorption(map[State]bool{c: true})
	if err != nil {
		t.Fatalf("MTTA: %v", err)
	}
	if math.Abs(mtta[a]-0.75) > 1e-12 {
		t.Errorf("E[T_A] = %v, want 0.75", mtta[a])
	}
	if math.Abs(mtta[bb]-0.25) > 1e-12 {
		t.Errorf("E[T_B] = %v, want 0.25", mtta[bb])
	}
}

func TestMeanTimeToAbsorptionUnreachable(t *testing.T) {
	t.Parallel()
	b := NewBuilder()
	a, bb, c := b.State("A"), b.State("B"), b.State("C")
	b.Transition(a, bb, 1)
	b.Transition(bb, a, 1)
	_ = c // C unreachable and absorbing... but A,B can't reach it.
	b.Transition(c, a, 1)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := m.MeanTimeToAbsorption(map[State]bool{c: true}); err == nil {
		t.Error("MTTA with unreachable absorbing set should error")
	}
	if _, err := m.MeanTimeToAbsorption(nil); !errors.Is(err, ErrBadModel) {
		t.Errorf("MTTA(nil) err = %v, want ErrBadModel", err)
	}
}

func TestAbsorptionProbabilities(t *testing.T) {
	t.Parallel()
	// A splits to B (rate 1) and C (rate 3): P(absorb B) = 1/4.
	b := NewBuilder()
	a, bb, c := b.State("A"), b.State("B"), b.State("C")
	b.Transition(a, bb, 1)
	b.Transition(a, c, 3)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	probs, err := m.AbsorptionProbabilities(map[State]bool{bb: true, c: true})
	if err != nil {
		t.Fatalf("AbsorptionProbabilities: %v", err)
	}
	if math.Abs(probs[a][bb]-0.25) > 1e-12 {
		t.Errorf("P(A→B) = %v, want 0.25", probs[a][bb])
	}
	if math.Abs(probs[a][c]-0.75) > 1e-12 {
		t.Errorf("P(A→C) = %v, want 0.75", probs[a][c])
	}
	if _, err := m.AbsorptionProbabilities(nil); !errors.Is(err, ErrBadModel) {
		t.Errorf("nil absorbing: err = %v, want ErrBadModel", err)
	}
}

// TestMTTAMatchesSimulationStructure: for the two-state repairable model,
// MTTF from Up equals 1/λ.
func TestMTTATwoState(t *testing.T) {
	t.Parallel()
	m, up, down := twoState(t, 0.25, 100)
	mtta, err := m.MeanTimeToAbsorption(map[State]bool{down: true})
	if err != nil {
		t.Fatalf("MTTA: %v", err)
	}
	if math.Abs(mtta[up]-4) > 1e-12 {
		t.Errorf("MTTF = %v, want 4", mtta[up])
	}
}
