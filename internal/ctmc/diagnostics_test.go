package ctmc

import (
	"math"
	"testing"

	"repro/internal/obs"
)

func TestSolveDiagnosticsDense(t *testing.T) {
	m, _, _ := twoState(t, 0.001, 4)
	var d Diagnostics
	pi, err := m.SteadyState(SolveOptions{Diag: &d})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]+pi[1]-1) > 1e-12 {
		t.Fatalf("pi sums to %g", pi[0]+pi[1])
	}
	if d.Method != MethodDense {
		t.Errorf("auto method on a 2-state chain = %v, want dense", d.Method)
	}
	if d.States != 2 || d.Iterations != 0 || d.DenseFallback {
		t.Errorf("diagnostics = %+v, want 2 states, 0 iterations, no fallback", d)
	}
	if d.Wall <= 0 {
		t.Errorf("wall time %v, want > 0", d.Wall)
	}
	if d.String() == "" {
		t.Error("empty diagnostics string")
	}
}

func TestSolveDiagnosticsIterative(t *testing.T) {
	m, _, _ := twoState(t, 0.001, 4)
	var d Diagnostics
	if _, err := m.SteadyState(SolveOptions{Method: MethodGaussSeidel, Diag: &d}); err != nil {
		t.Fatal(err)
	}
	if d.Method != MethodGaussSeidel {
		t.Errorf("method = %v, want gauss-seidel", d.Method)
	}
	if d.Iterations <= 0 {
		t.Errorf("iterations = %d, want > 0", d.Iterations)
	}
	if !(d.FinalDiff >= 0 && d.FinalDiff < 1e-12) {
		t.Errorf("final diff = %g, want within default tolerance", d.FinalDiff)
	}
}

// TestSolveRecordsObsMetrics checks the solver reports into the default
// obs registry: the per-method solve counter must advance.
func TestSolveRecordsObsMetrics(t *testing.T) {
	m, _, _ := twoState(t, 0.001, 4)
	before := obs.C("ctmc_solves_total", "", `method="dense"`).Value()
	secBefore := obs.H("ctmc_solve_seconds", "", obs.DurationBuckets).Count()
	if _, err := m.SteadyState(SolveOptions{Method: MethodDense}); err != nil {
		t.Fatal(err)
	}
	if got := obs.C("ctmc_solves_total", "", `method="dense"`).Value(); got != before+1 {
		t.Errorf("ctmc_solves_total{method=dense} = %d, want %d", got, before+1)
	}
	if got := obs.H("ctmc_solve_seconds", "", obs.DurationBuckets).Count(); got != secBefore+1 {
		t.Errorf("ctmc_solve_seconds count = %d, want %d", got, secBefore+1)
	}
}
