package ctmc

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// Method selects a steady-state solution algorithm.
type Method int

// Available steady-state methods.
const (
	// MethodAuto picks dense LU for small chains and Gauss–Seidel above
	// the dense threshold.
	MethodAuto Method = iota + 1
	// MethodDense solves the balance equations directly by LU.
	MethodDense
	// MethodGaussSeidel iterates Gauss–Seidel sweeps on the sparse
	// balance equations.
	MethodGaussSeidel
	// MethodPower runs power iteration on the uniformized DTMC.
	MethodPower
)

func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodDense:
		return "dense"
	case MethodGaussSeidel:
		return "gauss-seidel"
	case MethodPower:
		return "power"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// denseThreshold is the state-count crossover where MethodAuto switches
// from dense LU (O(n³) but cache-friendly and exact) to iterative sweeps.
// Availability chains are stiff (rates spanning 1e-7..1e4 per hour), which
// slows iterative convergence, so the direct solver is preferred well past
// the point where it would win on flop count alone.
const denseThreshold = 1200

// denseFallbackLimit bounds the state count for which MethodAuto retries
// a failed iterative solve with the dense solver.
const denseFallbackLimit = 4000

// SolveOptions configures SteadyState.
type SolveOptions struct {
	Method Method
	// Tol/MaxIter are forwarded to the iterative solvers.
	Tol     float64
	MaxIter int
	// Diag, if non-nil, receives a record of how the solve actually ran:
	// the method finally used, iteration counts, the dense fallback, and
	// wall time. It is filled on success and on failure.
	Diag *Diagnostics
}

// Diagnostics reports what a steady-state solve actually did — the
// observability needed to trust (and reproduce) the numbers: MethodAuto's
// silent choices and fallbacks become visible here and in the obs
// registry.
type Diagnostics struct {
	// Method is the algorithm that produced the returned vector (after
	// any auto selection or dense fallback).
	Method Method
	// States is the chain size.
	States int
	// Iterations is the sweep count of the iterative solver (0 for a
	// purely dense solve). After a dense fallback it retains the sweeps
	// the failed iterative attempt consumed.
	Iterations int
	// FinalDiff is the iterative solver's last max-norm sweep-to-sweep
	// change of the normalized iterate (0 for a purely dense solve).
	FinalDiff float64
	// DenseFallback marks that Gauss–Seidel failed to converge and
	// MethodAuto retried with the dense LU solver.
	DenseFallback bool
	// Wall is the total solve wall time, including any fallback.
	Wall time.Duration
}

// String renders a one-line summary for CLI --stats reports.
func (d Diagnostics) String() string {
	s := fmt.Sprintf("method=%v states=%d wall=%v", d.Method, d.States, d.Wall)
	if d.Iterations > 0 {
		s += fmt.Sprintf(" sweeps=%d final-diff=%.3g", d.Iterations, d.FinalDiff)
	}
	if d.DenseFallback {
		s += " dense-fallback=true"
	}
	return s
}

// Solver metrics, reported to the default obs registry.
var (
	obsSolveSeconds  = obs.H("ctmc_solve_seconds", "steady-state solve wall time", obs.DurationBuckets)
	obsSolveIters    = obs.H("ctmc_solve_iterations", "iterative solver sweeps per solve", obs.IterationBuckets)
	obsDenseFallback = obs.C("ctmc_dense_fallback_total", "iterative solves that fell back to dense LU")
	obsSolveErrors   = obs.C("ctmc_solve_errors_total", "steady-state solves that returned an error")
	obsLastStates    = obs.G("ctmc_last_solve_states", "state count of the most recent solve")
	obsLastResidual  = obs.G("ctmc_last_solve_residual", "final normalized max-norm change of the most recent iterative solve")
)

// obsSolvesTotal counts completed solves by the method that produced the
// result.
func obsSolvesTotal(m Method) *obs.Counter {
	return obs.C("ctmc_solves_total", "completed steady-state solves by method",
		fmt.Sprintf("method=%q", m))
}

// SteadyState computes the stationary distribution π with π·Q = 0, Σπ = 1.
// The chain must be irreducible.
func (m *Model) SteadyState(opts SolveOptions) ([]float64, error) {
	if m.NumStates() == 0 {
		return nil, fmt.Errorf("empty model: %w", ErrBadModel)
	}
	if !m.IsIrreducible() {
		return nil, fmt.Errorf("steady state undefined: %w", ErrNotIrreducible)
	}
	timer := obs.StartTimer(obsSolveSeconds)
	span := trace.Default().Start("ctmc.solve", nil,
		trace.String(trace.AttrTrack, "solver"),
		trace.Int("states", int64(m.NumStates())))
	method := opts.Method
	auto := method == 0 || method == MethodAuto
	if auto {
		if m.NumStates() <= denseThreshold {
			method = MethodDense
		} else {
			method = MethodGaussSeidel
		}
	}
	var iter sparse.IterStats
	fellBack := false
	pi, err := m.steadyStateBy(method, opts, &iter)
	if err != nil && auto && method == MethodGaussSeidel &&
		errors.Is(err, sparse.ErrNoConvergence) && m.NumStates() <= denseFallbackLimit {
		// Stiff chain defeated the iterative solver; fall back to the
		// exact direct solve while it is still affordable.
		fellBack = true
		method = MethodDense
		obsDenseFallback.Inc()
		pi, err = m.steadyStateDense()
	}
	wall := timer.Stop()
	span.Attr(
		trace.String("method", method.String()),
		trace.Int("iterations", int64(iter.Sweeps)),
		trace.Bool("error", err != nil))
	span.End()
	if opts.Diag != nil {
		*opts.Diag = Diagnostics{
			Method:        method,
			States:        m.NumStates(),
			Iterations:    iter.Sweeps,
			FinalDiff:     iter.FinalDiff,
			DenseFallback: fellBack,
			Wall:          wall,
		}
	}
	obsLastStates.Set(float64(m.NumStates()))
	if iter.Sweeps > 0 {
		obsSolveIters.Observe(float64(iter.Sweeps))
		obsLastResidual.Set(iter.FinalDiff)
	}
	if err != nil {
		obsSolveErrors.Inc()
		return pi, err
	}
	obsSolvesTotal(method).Inc()
	return pi, nil
}

func (m *Model) steadyStateBy(method Method, opts SolveOptions, iter *sparse.IterStats) ([]float64, error) {
	switch method {
	case MethodDense:
		return m.steadyStateDense()
	case MethodGaussSeidel:
		q, err := m.SparseGenerator()
		if err != nil {
			return nil, err
		}
		pi, err := sparse.SteadyStateGaussSeidel(q, sparse.SteadyStateOptions{Tol: opts.Tol, MaxIter: opts.MaxIter, Stats: iter})
		if err != nil {
			return nil, fmt.Errorf("steady state: %w", err)
		}
		return pi, nil
	case MethodPower:
		q, err := m.SparseGenerator()
		if err != nil {
			return nil, err
		}
		pi, err := sparse.SteadyStatePower(q, sparse.SteadyStateOptions{Tol: opts.Tol, MaxIter: opts.MaxIter, Stats: iter})
		if err != nil {
			return nil, fmt.Errorf("steady state: %w", err)
		}
		return pi, nil
	default:
		return nil, fmt.Errorf("unknown method %v: %w", method, ErrBadModel)
	}
}

// steadyStateDense solves Qᵀπᵀ = 0 with the normalization Σπ = 1 replacing
// the last (redundant) balance equation.
func (m *Model) steadyStateDense() ([]float64, error) {
	n := m.NumStates()
	q := m.Generator()
	// Build A = Qᵀ with the final row replaced by all-ones; b = e_n.
	a := numeric.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, q.At(j, i))
		}
	}
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b := make([]float64, n)
	b[n-1] = 1
	pi, err := numeric.SolveLinear(a, b)
	if err != nil {
		if errors.Is(err, numeric.ErrSingular) {
			return nil, fmt.Errorf("balance equations singular: %w", ErrNotIrreducible)
		}
		return nil, fmt.Errorf("steady state: %w", err)
	}
	// Round-off can leave tiny negatives on near-degenerate chains.
	for i := range pi {
		if pi[i] < 0 && pi[i] > -1e-12 {
			pi[i] = 0
		}
	}
	numeric.Normalize(pi)
	if !numeric.AllFinite(pi) {
		return nil, fmt.Errorf("steady state produced non-finite probabilities: %w", ErrNotIrreducible)
	}
	return pi, nil
}

// ProbabilityOf sums π over the given states.
func ProbabilityOf(pi []float64, states []State) float64 {
	var p float64
	for _, s := range states {
		if int(s) >= 0 && int(s) < len(pi) {
			p += pi[s]
		}
	}
	return p
}

// EntryFrequency returns the steady-state frequency (events per unit time)
// of transitions that enter the target set from outside it: Σ_{i∉T, j∈T}
// π_i·q_ij. For availability models this is the system failure frequency
// when T is the set of down states.
func (m *Model) EntryFrequency(pi []float64, target map[State]bool) float64 {
	var f float64
	for _, tr := range m.transitions {
		if !target[tr.From] && target[tr.To] {
			f += pi[tr.From] * tr.Rate
		}
	}
	return f
}

// ExitFrequency returns the steady-state frequency of transitions leaving
// the target set: Σ_{i∈T, j∉T} π_i·q_ij. In steady state this equals
// EntryFrequency for the same set (flow balance).
func (m *Model) ExitFrequency(pi []float64, target map[State]bool) float64 {
	var f float64
	for _, tr := range m.transitions {
		if target[tr.From] && !target[tr.To] {
			f += pi[tr.From] * tr.Rate
		}
	}
	return f
}
