package ctmc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// Method selects a steady-state solution algorithm.
type Method int

// Available steady-state methods.
const (
	// MethodAuto picks dense LU for small chains and Gauss–Seidel above
	// the dense threshold.
	MethodAuto Method = iota + 1
	// MethodDense solves the balance equations directly by LU.
	MethodDense
	// MethodGaussSeidel iterates Gauss–Seidel sweeps on the sparse
	// balance equations.
	MethodGaussSeidel
	// MethodPower runs power iteration on the uniformized DTMC.
	MethodPower
)

func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodDense:
		return "dense"
	case MethodGaussSeidel:
		return "gauss-seidel"
	case MethodPower:
		return "power"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// denseThreshold is the state-count crossover where MethodAuto switches
// from dense LU (O(n³) but cache-friendly and exact) to iterative sweeps.
// Availability chains are stiff (rates spanning 1e-7..1e4 per hour), which
// slows iterative convergence, so the direct solver is preferred well past
// the point where it would win on flop count alone.
const denseThreshold = 1200

// denseFallbackLimit bounds the state count for which MethodAuto retries
// a failed iterative solve with the dense solver.
const denseFallbackLimit = 4000

// SolveOptions configures SteadyState.
type SolveOptions struct {
	Method Method
	// Ctx, if non-nil, makes the solve cancelable: it is checked before
	// the solve starts and every few sweeps inside the iterative solvers,
	// so a stuck Gauss–Seidel loop aborts promptly with an error wrapping
	// context.Canceled (or DeadlineExceeded) — distinct from
	// sparse.ErrNoConvergence. The dense LU path is not interruptible
	// mid-factorization; it only checks the context up front (dense
	// chains are small by construction, see denseThreshold).
	Ctx context.Context
	// Tol/MaxIter are forwarded to the iterative solvers.
	Tol     float64
	MaxIter int
	// Solver, if non-nil, supplies the reusable solve context — scratch
	// vectors, dense assembly/factorization storage, and the warm-start
	// cache — for repeated solves (sweeps, Monte-Carlo, hierarchies).
	// A Solver is not safe for concurrent use: share one per worker, not
	// per run. A nil Solver allocates per solve (the one-shot path).
	Solver *Solver
	// Diag, if non-nil, receives a record of how the solve actually ran:
	// the method finally used, iteration counts, the dense fallback, and
	// wall time. It is filled on success and on failure.
	Diag *Diagnostics
}

// Diagnostics reports what a steady-state solve actually did — the
// observability needed to trust (and reproduce) the numbers: MethodAuto's
// silent choices and fallbacks become visible here and in the obs
// registry.
type Diagnostics struct {
	// Method is the algorithm that produced the returned vector (after
	// any auto selection or dense fallback).
	Method Method
	// States is the chain size.
	States int
	// Iterations is the sweep count of the iterative solver (0 for a
	// purely dense solve). After a dense fallback it retains the sweeps
	// the failed iterative attempt consumed.
	Iterations int
	// FinalDiff is the iterative solver's last max-norm sweep-to-sweep
	// change of the normalized iterate (0 for a purely dense solve).
	FinalDiff float64
	// Residual is the verified balance-equation residual ‖πQ‖∞ of the
	// returned iterative solve. It is 0 when the result came from the
	// dense solver (including after a dense fallback): the dense path is
	// direct, so no iterative residual describes the returned vector.
	Residual float64
	// WarmStart reports whether the iterative solve was seeded from a
	// previously computed stationary distribution (see Solver).
	WarmStart bool
	// DenseFallback marks that Gauss–Seidel failed to converge and
	// MethodAuto retried with the dense LU solver.
	DenseFallback bool
	// Wall is the total solve wall time, including any fallback.
	Wall time.Duration
}

// String renders a one-line summary for CLI --stats reports.
func (d Diagnostics) String() string {
	s := fmt.Sprintf("method=%v states=%d wall=%v", d.Method, d.States, d.Wall)
	if d.Iterations > 0 {
		s += fmt.Sprintf(" sweeps=%d final-diff=%.3g", d.Iterations, d.FinalDiff)
	}
	if d.Residual > 0 {
		s += fmt.Sprintf(" residual=%.3g", d.Residual)
	}
	if d.WarmStart {
		s += " warm-start=true"
	}
	if d.DenseFallback {
		s += " dense-fallback=true"
	}
	return s
}

// Solver metrics, reported to the default obs registry.
var (
	obsSolveSeconds  = obs.H("ctmc_solve_seconds", "steady-state solve wall time", obs.DurationBuckets)
	obsSolveIters    = obs.H("ctmc_solve_iterations", "iterative solver sweeps per solve", obs.IterationBuckets)
	obsDenseFallback = obs.C("ctmc_dense_fallback_total", "iterative solves that fell back to dense LU")
	obsSolveErrors   = obs.C("ctmc_solve_errors_total", "steady-state solves that returned an error")
	obsLastStates    = obs.G("ctmc_last_solve_states", "state count of the most recent solve")
	obsLastResidual  = obs.G("ctmc_last_solve_residual", "verified residual ‖πQ‖∞ of the most recent solve (0 after a dense solve)")
	obsWarmStarts    = obs.C("ctmc_warm_start_solves_total", "iterative solves seeded from a cached stationary distribution")
	obsCancellations = obs.C("solver_cancellations_total",
		"engine runs aborted by context cancellation", `layer="ctmc"`)
)

// obsSolvesByMethod pre-resolves the per-method solve counters so the hot
// solve path does not format a label per call.
var obsSolvesByMethod = map[Method]*obs.Counter{
	MethodDense:       newSolvesCounter(MethodDense),
	MethodGaussSeidel: newSolvesCounter(MethodGaussSeidel),
	MethodPower:       newSolvesCounter(MethodPower),
}

func newSolvesCounter(m Method) *obs.Counter {
	return obs.C("ctmc_solves_total", "completed steady-state solves by method",
		fmt.Sprintf("method=%q", m))
}

// obsSolvesTotal counts completed solves by the method that produced the
// result.
func obsSolvesTotal(m Method) *obs.Counter {
	if c, ok := obsSolvesByMethod[m]; ok {
		return c
	}
	return newSolvesCounter(m)
}

// SteadyState computes the stationary distribution π with π·Q = 0, Σπ = 1.
// The chain must be irreducible.
func (m *Model) SteadyState(opts SolveOptions) ([]float64, error) {
	if m.NumStates() == 0 {
		return nil, fmt.Errorf("empty model: %w", ErrBadModel)
	}
	if !m.IsIrreducible() {
		return nil, fmt.Errorf("steady state undefined: %w", ErrNotIrreducible)
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			obsCancellations.Inc()
			return nil, fmt.Errorf("steady state canceled: %w", err)
		}
	}
	timer := obs.StartTimer(obsSolveSeconds)
	span := trace.Default().Start("ctmc.solve", nil,
		trace.String(trace.AttrTrack, "solver"),
		trace.Int("states", int64(m.NumStates())))
	method := opts.Method
	auto := method == 0 || method == MethodAuto
	if auto {
		if m.NumStates() <= denseThreshold {
			method = MethodDense
		} else {
			method = MethodGaussSeidel
		}
	}
	var iter sparse.IterStats
	fellBack := false
	pi, err := m.steadyStateBy(method, opts, &iter)
	if err != nil && auto && method == MethodGaussSeidel &&
		errors.Is(err, sparse.ErrNoConvergence) && m.NumStates() <= denseFallbackLimit {
		// Stiff chain defeated the iterative solver; fall back to the
		// exact direct solve while it is still affordable.
		fellBack = true
		method = MethodDense
		obsDenseFallback.Inc()
		pi, err = m.steadyStateDense(opts.Solver)
	}
	wall := timer.Stop()
	span.Attr(
		trace.String("method", method.String()),
		trace.Int("iterations", int64(iter.Sweeps)),
		trace.Bool("error", err != nil))
	span.End()
	// A dense-produced result has no iterative residual: report 0 so the
	// diagnostics (and the gauge below) never show a stale value from an
	// earlier or abandoned iterative attempt next to a dense solve.
	residual := iter.Residual
	if method == MethodDense {
		residual = 0
	}
	if opts.Diag != nil {
		*opts.Diag = Diagnostics{
			Method:        method,
			States:        m.NumStates(),
			Iterations:    iter.Sweeps,
			FinalDiff:     iter.FinalDiff,
			Residual:      residual,
			WarmStart:     iter.WarmStart,
			DenseFallback: fellBack,
			Wall:          wall,
		}
	}
	obsLastStates.Set(float64(m.NumStates()))
	if iter.Sweeps > 0 {
		obsSolveIters.Observe(float64(iter.Sweeps))
	}
	if iter.WarmStart {
		obsWarmStarts.Inc()
	}
	obsLastResidual.Set(residual)
	if err != nil {
		obsSolveErrors.Inc()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			obsCancellations.Inc()
		}
		return pi, err
	}
	opts.Solver.noteSolve(m, pi, iter)
	obsSolvesTotal(method).Inc()
	return pi, nil
}

func (m *Model) steadyStateBy(method Method, opts SolveOptions, iter *sparse.IterStats) ([]float64, error) {
	s := opts.Solver
	switch method {
	case MethodDense:
		return m.steadyStateDense(s)
	case MethodGaussSeidel:
		q, err := m.SparseGenerator()
		if err != nil {
			return nil, err
		}
		qt, err := m.SparseGeneratorTransposed()
		if err != nil {
			return nil, err
		}
		pi, err := sparse.SteadyStateGaussSeidel(q, sparse.SteadyStateOptions{
			Ctx:        opts.Ctx,
			Tol:        opts.Tol,
			MaxIter:    opts.MaxIter,
			Stats:      iter,
			Transposed: qt,
			Workspace:  s.workspace(),
			X0:         s.warmStart(m),
		})
		if err != nil {
			return nil, fmt.Errorf("steady state: %w", err)
		}
		return pi, nil
	case MethodPower:
		q, err := m.SparseGenerator()
		if err != nil {
			return nil, err
		}
		pi, err := sparse.SteadyStatePower(q, sparse.SteadyStateOptions{
			Ctx:       opts.Ctx,
			Tol:       opts.Tol,
			MaxIter:   opts.MaxIter,
			Stats:     iter,
			Workspace: s.workspace(),
			X0:        s.warmStart(m),
		})
		if err != nil {
			return nil, fmt.Errorf("steady state: %w", err)
		}
		return pi, nil
	default:
		return nil, fmt.Errorf("unknown method %v: %w", method, ErrBadModel)
	}
}

// steadyStateDense solves Qᵀπᵀ = 0 with the normalization Σπ = 1 replacing
// the last (redundant) balance equation. A non-nil Solver supplies the
// assembly and factorization storage so repeated solves allocate nothing.
func (m *Model) steadyStateDense(s *Solver) ([]float64, error) {
	n := m.NumStates()
	a, b, x, lu := s.denseScratch(n)
	// Assemble A = Qᵀ directly from the transition list — no intermediate
	// dense Q. Entries landing on row n−1 are overwritten below when that
	// (redundant) balance row becomes the normalization row.
	for _, tr := range m.transitions {
		a.Add(int(tr.To), int(tr.From), tr.Rate)
		a.Add(int(tr.From), int(tr.From), -tr.Rate)
	}
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b[n-1] = 1
	if err := lu.FactorFrom(a); err != nil {
		if errors.Is(err, numeric.ErrSingular) {
			return nil, fmt.Errorf("balance equations singular: %w", ErrNotIrreducible)
		}
		return nil, fmt.Errorf("steady state: %w", err)
	}
	if err := lu.SolveInto(x, b); err != nil {
		return nil, fmt.Errorf("steady state: %w", err)
	}
	pi := append([]float64(nil), x...)
	// Round-off can leave tiny negatives on near-degenerate chains.
	for i := range pi {
		if pi[i] < 0 && pi[i] > -1e-12 {
			pi[i] = 0
		}
	}
	numeric.Normalize(pi)
	if !numeric.AllFinite(pi) {
		return nil, fmt.Errorf("steady state produced non-finite probabilities: %w", ErrNotIrreducible)
	}
	return pi, nil
}

// ProbabilityOf sums π over the given states.
func ProbabilityOf(pi []float64, states []State) float64 {
	var p float64
	for _, s := range states {
		if int(s) >= 0 && int(s) < len(pi) {
			p += pi[s]
		}
	}
	return p
}

// EntryFrequency returns the steady-state frequency (events per unit time)
// of transitions that enter the target set from outside it: Σ_{i∉T, j∈T}
// π_i·q_ij. For availability models this is the system failure frequency
// when T is the set of down states.
func (m *Model) EntryFrequency(pi []float64, target map[State]bool) float64 {
	var f float64
	for _, tr := range m.transitions {
		if !target[tr.From] && target[tr.To] {
			f += pi[tr.From] * tr.Rate
		}
	}
	return f
}

// ExitFrequency returns the steady-state frequency of transitions leaving
// the target set: Σ_{i∈T, j∉T} π_i·q_ij. In steady state this equals
// EntryFrequency for the same set (flow balance).
func (m *Model) ExitFrequency(pi []float64, target map[State]bool) float64 {
	var f float64
	for _, tr := range m.transitions {
		if target[tr.From] && !target[tr.To] {
			f += pi[tr.From] * tr.Rate
		}
	}
	return f
}
