package ctmc

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Lump computes the coarsest ordinarily-lumpable partition of the chain
// that refines the given initial partition, and returns the quotient model
// together with the state→block mapping.
//
// initial assigns each state a class label (e.g. its reward class); states
// may only ever be merged within the same label. The refinement splits
// blocks until every state in a block has identical total transition rates
// into every other block — the ordinary lumpability condition, under which
// the quotient chain is an exact reduction: block steady-state
// probabilities equal the sums over their members.
//
// Symmetric models (replicated components, the product models package hier
// builds) reduce dramatically; asymmetric models are returned unchanged.
func (m *Model) Lump(initial []int) (*Model, []int, error) {
	n := m.NumStates()
	if len(initial) != n {
		return nil, nil, fmt.Errorf("initial partition has %d entries for %d states: %w", len(initial), n, ErrBadModel)
	}
	// Normalize the initial labels into dense block ids.
	block := make([]int, n)
	next := 0
	seen := make(map[int]int)
	for i, label := range initial {
		id, ok := seen[label]
		if !ok {
			id = next
			next++
			seen[label] = id
		}
		block[i] = id
	}
	// Refinement: split blocks by the signature of rates into blocks.
	for {
		type key struct {
			old int
			sig string
		}
		sigs := make([]string, n)
		for s := 0; s < n; s++ {
			sigs[s] = m.blockSignature(State(s), block)
		}
		reassign := make(map[key]int)
		newBlock := make([]int, n)
		count := 0
		for s := 0; s < n; s++ {
			k := key{old: block[s], sig: sigs[s]}
			id, ok := reassign[k]
			if !ok {
				id = count
				count++
				reassign[k] = id
			}
			newBlock[s] = id
		}
		stable := count == numBlocks(block)
		block = newBlock
		if stable {
			break
		}
	}
	quotient, err := m.buildQuotient(block)
	if err != nil {
		return nil, nil, err
	}
	return quotient, block, nil
}

// blockSignature canonically encodes a state's total rates into each block.
func (m *Model) blockSignature(s State, block []int) string {
	into := make(map[int]float64)
	for _, idx := range m.outgoing[s] {
		tr := m.transitions[idx]
		into[block[tr.To]] += tr.Rate
	}
	// Rate into the state's own block is excluded: ordinary lumpability
	// only constrains rates leaving the block.
	delete(into, block[s])
	keys := make([]int, 0, len(into))
	for k := range into {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(strconv.Itoa(k))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(into[k], 'g', 17, 64))
		b.WriteByte(';')
	}
	return b.String()
}

func numBlocks(block []int) int {
	max := -1
	for _, b := range block {
		if b > max {
			max = b
		}
	}
	return max + 1
}

// buildQuotient assembles the lumped model: one state per block, named
// after its members, with inter-block rates taken from any member (the
// refinement guarantees uniformity).
func (m *Model) buildQuotient(block []int) (*Model, error) {
	nb := numBlocks(block)
	members := make([][]State, nb)
	for s := 0; s < m.NumStates(); s++ {
		members[block[s]] = append(members[block[s]], State(s))
	}
	b := NewBuilder()
	names := make([]string, nb)
	for i, ms := range members {
		if len(ms) == 1 {
			names[i] = m.Name(ms[0])
		} else {
			parts := make([]string, len(ms))
			for j, s := range ms {
				parts[j] = m.Name(s)
			}
			names[i] = "{" + strings.Join(parts, "+") + "}"
		}
		b.State(names[i])
	}
	for i, ms := range members {
		rep := ms[0]
		into := make(map[int]float64)
		for _, idx := range m.outgoing[rep] {
			tr := m.transitions[idx]
			if block[tr.To] != i {
				into[block[tr.To]] += tr.Rate
			}
		}
		for j, rate := range into {
			b.Transition(State(i), State(j), rate)
		}
	}
	q, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("lump quotient: %w", err)
	}
	return q, nil
}
