package ctmc

import (
	"fmt"

	"repro/internal/numeric"
)

// MeanTimeToAbsorption computes, for each transient (non-absorbing) state,
// the expected time until the chain first enters the absorbing set, via the
// fundamental matrix: solve (−Q_TT)·τ = 1 restricted to transient states.
// States in absorbing are treated as absorbing regardless of their outgoing
// transitions. The returned map has an entry for every state not in the
// absorbing set. States that cannot reach the absorbing set make the
// restricted system singular and yield an error.
func (m *Model) MeanTimeToAbsorption(absorbing map[State]bool) (map[State]float64, error) {
	if len(absorbing) == 0 {
		return nil, fmt.Errorf("no absorbing states given: %w", ErrBadModel)
	}
	var transient []State
	pos := make(map[State]int)
	for s := 0; s < m.NumStates(); s++ {
		if !absorbing[State(s)] {
			pos[State(s)] = len(transient)
			transient = append(transient, State(s))
		}
	}
	if len(transient) == 0 {
		return map[State]float64{}, nil
	}
	nt := len(transient)
	a := numeric.NewMatrix(nt, nt)
	for i, s := range transient {
		a.Set(i, i, m.ExitRate(s))
		for _, idx := range m.outgoing[s] {
			tr := m.transitions[idx]
			if j, ok := pos[tr.To]; ok {
				a.Add(i, j, -tr.Rate)
			}
		}
	}
	ones := make([]float64, nt)
	for i := range ones {
		ones[i] = 1
	}
	tau, err := numeric.SolveLinear(a, ones)
	if err != nil {
		return nil, fmt.Errorf("mean time to absorption (is the absorbing set reachable from every transient state?): %w", err)
	}
	out := make(map[State]float64, nt)
	for i, s := range transient {
		out[s] = tau[i]
	}
	return out, nil
}

// AbsorptionProbabilities computes, for each transient state, the
// probability of being absorbed into each absorbing state, via
// B = (−Q_TT)⁻¹ · Q_TA. The result maps transient state → absorbing state
// → probability.
func (m *Model) AbsorptionProbabilities(absorbing map[State]bool) (map[State]map[State]float64, error) {
	if len(absorbing) == 0 {
		return nil, fmt.Errorf("no absorbing states given: %w", ErrBadModel)
	}
	var transient, absorbed []State
	pos := make(map[State]int)
	for s := 0; s < m.NumStates(); s++ {
		if absorbing[State(s)] {
			absorbed = append(absorbed, State(s))
		} else {
			pos[State(s)] = len(transient)
			transient = append(transient, State(s))
		}
	}
	nt := len(transient)
	out := make(map[State]map[State]float64, nt)
	if nt == 0 {
		return out, nil
	}
	a := numeric.NewMatrix(nt, nt)
	for i, s := range transient {
		a.Set(i, i, m.ExitRate(s))
		for _, idx := range m.outgoing[s] {
			tr := m.transitions[idx]
			if j, ok := pos[tr.To]; ok {
				a.Add(i, j, -tr.Rate)
			}
		}
	}
	f, err := numeric.Factor(a)
	if err != nil {
		return nil, fmt.Errorf("absorption probabilities: %w", err)
	}
	for i := range transient {
		out[transient[i]] = make(map[State]float64, len(absorbed))
	}
	rhs := make([]float64, nt)
	for _, abs := range absorbed {
		for i, s := range transient {
			var r float64
			for _, idx := range m.outgoing[s] {
				if m.transitions[idx].To == abs {
					r = m.transitions[idx].Rate
				}
			}
			rhs[i] = r
		}
		col, err := f.Solve(rhs)
		if err != nil {
			return nil, fmt.Errorf("absorption probabilities: %w", err)
		}
		for i, s := range transient {
			out[s][abs] = col[i]
		}
	}
	return out, nil
}

// EquivalentRates reduces the model to a two-state (up, down) abstraction,
// the RAScad hierarchical-modeling primitive: given the partition of states
// into up (reward 1) and down (reward 0) via the down set, it returns
//
//	λ_eq = failure frequency / P(up)   (rate of leaving the up macro-state)
//	μ_eq = failure frequency / P(down) (rate of leaving the down macro-state)
//
// so that a two-state chain with these rates has the same steady-state
// availability P(up) and the same failure frequency as the full model.
func (m *Model) EquivalentRates(pi []float64, down map[State]bool) (lambdaEq, muEq float64, err error) {
	if len(pi) != m.NumStates() {
		return 0, 0, fmt.Errorf("pi has length %d, want %d: %w", len(pi), m.NumStates(), ErrBadModel)
	}
	var pDown float64
	for s, isDown := range down {
		if isDown && int(s) < len(pi) {
			pDown += pi[s]
		}
	}
	pUp := 1 - pDown
	freq := m.EntryFrequency(pi, down)
	if pUp <= 0 {
		return 0, 0, fmt.Errorf("no steady-state up probability: %w", ErrBadModel)
	}
	lambdaEq = freq / pUp
	if pDown > 0 {
		muEq = freq / pDown
	}
	return lambdaEq, muEq, nil
}
