package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	t.Parallel()
	tb := NewTable("Results", "Config", "Availability")
	tb.AddRow("Config 1", "99.99933%")
	tb.AddRow("Config 2", "99.99956%")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	if lines[0] != "Results" {
		t.Errorf("title = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Config ") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[3], "Config 1") || !strings.Contains(lines[3], "99.99933%") {
		t.Errorf("row = %q", lines[3])
	}
	// Columns aligned: "Availability" starts at the same offset in all rows.
	off := strings.Index(lines[1], "Availability")
	if off < 0 {
		t.Fatal("no Availability header")
	}
	if lines[3][off:off+8] != "99.99933"[:8] {
		t.Errorf("misaligned column: %q", lines[3])
	}
	// No trailing spaces.
	for i, l := range lines {
		if strings.HasSuffix(l, " ") {
			t.Errorf("line %d has trailing space: %q", i, l)
		}
	}
}

func TestTableShortRowPadded(t *testing.T) {
	t.Parallel()
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("x")
	if got := len(tb.Rows[0]); got != 3 {
		t.Fatalf("row cells = %d, want 3", got)
	}
	// Renders without panic.
	_ = tb.String()
}

func TestTableNoTitle(t *testing.T) {
	t.Parallel()
	tb := NewTable("", "A")
	tb.AddRow("1")
	out := tb.String()
	if strings.HasPrefix(out, "\n") {
		t.Error("leading blank line with empty title")
	}
}

func TestAddRowf(t *testing.T) {
	t.Parallel()
	tb := NewTable("", "n", "v")
	tb.AddRowf(42, 3.14)
	if tb.Rows[0][0] != "42" || tb.Rows[0][1] != "3.14" {
		t.Errorf("AddRowf = %v", tb.Rows[0])
	}
}

func TestWriteCSV(t *testing.T) {
	t.Parallel()
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "x,y") // embedded comma must be quoted
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got := buf.String()
	if !strings.Contains(got, "a,b\n") {
		t.Errorf("csv header missing: %q", got)
	}
	if !strings.Contains(got, `"x,y"`) {
		t.Errorf("embedded comma not quoted: %q", got)
	}
}

func TestAvailabilityFormat(t *testing.T) {
	t.Parallel()
	if got := Availability(0.9999933); got != "99.99933%" {
		t.Errorf("Availability = %q", got)
	}
}

func TestMinutesFormat(t *testing.T) {
	t.Parallel()
	if got := Minutes(3.49); got != "3.49 min" {
		t.Errorf("Minutes = %q", got)
	}
	if got := Minutes(0.0002); got != "0.01 sec" {
		t.Errorf("Minutes(small) = %q", got)
	}
}
