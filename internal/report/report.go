// Package report renders analysis results as aligned ASCII tables and CSV,
// matching the rows and series the paper's tables and figures present.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted cells; each cell is a
// (format, value...) pair rendered with fmt.Sprintf.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		row = append(row, fmt.Sprint(c))
	}
	t.AddRow(row...)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		var line strings.Builder
		for i, c := range cells {
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(c)
			line.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("<table render error: %v>", err)
	}
	return b.String()
}

// WriteCSV emits the table (headers + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return fmt.Errorf("report: write csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("report: flush csv: %w", err)
	}
	return nil
}

// Availability formats an availability as a percentage with the paper's
// precision (e.g. 0.9999933 → "99.99933%").
func Availability(a float64) string {
	return fmt.Sprintf("%.5f%%", a*100)
}

// Minutes formats a duration in minutes, switching to seconds below 0.1
// minute (as the paper does for the Config 2 AS share).
func Minutes(m float64) string {
	if m >= 0.1 {
		return fmt.Sprintf("%.2f min", m)
	}
	return fmt.Sprintf("%.2f sec", m*60)
}
