package sensitivity

import (
	"fmt"
	"sort"
)

// MultiSolver evaluates the model for a full parameter assignment and
// returns the measure of interest (for availability studies, yearly
// downtime in minutes).
type MultiSolver func(assignment map[string]float64) (float64, error)

// ImportanceEntry ranks one parameter's influence on the output measure.
type ImportanceEntry struct {
	Name string
	// Base is the parameter's nominal value.
	Base float64
	// Elasticity is the normalized logarithmic sensitivity
	// (∂m/m)/(∂x/x) at the nominal point: the % change in the measure per
	// % change in the parameter. Estimated by central finite differences.
	Elasticity float64
	// Swing is the measure's change when the parameter moves across its
	// whole [Low, High] range with the others held at nominal — a global
	// (one-at-a-time) importance complementing the local elasticity.
	Swing float64
}

// ImportanceRange describes one analyzed parameter.
type ImportanceRange struct {
	Name      string
	Base      float64
	Low, High float64
}

// Importance ranks parameters by influence on the solver's output measure,
// using central-difference elasticities at the nominal point plus
// one-at-a-time range swings. Results are sorted by |Swing| descending.
//
// This is the "which parameter should we actually improve?" analysis that
// motivates the paper's choice of Tstart_long for its Figures 5/6 sweep.
func Importance(params []ImportanceRange, solve MultiSolver) ([]ImportanceEntry, error) {
	if solve == nil {
		return nil, fmt.Errorf("nil solver: %w", ErrBadSweep)
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("no parameters: %w", ErrBadSweep)
	}
	nominal := make(map[string]float64, len(params))
	for _, p := range params {
		if p.Low > p.Base || p.Base > p.High {
			return nil, fmt.Errorf("parameter %s: base %g outside [%g, %g]: %w",
				p.Name, p.Base, p.Low, p.High, ErrBadSweep)
		}
		if _, dup := nominal[p.Name]; dup {
			return nil, fmt.Errorf("duplicate parameter %s: %w", p.Name, ErrBadSweep)
		}
		nominal[p.Name] = p.Base
	}
	base, err := solve(clone(nominal))
	if err != nil {
		return nil, fmt.Errorf("importance at nominal: %w", err)
	}
	entries := make([]ImportanceEntry, 0, len(params))
	for _, p := range params {
		e := ImportanceEntry{Name: p.Name, Base: p.Base}
		// Central difference with a 1% relative step, clipped to the range.
		h := 0.01 * (p.High - p.Low)
		if h == 0 {
			entries = append(entries, e)
			continue
		}
		lo, hi := p.Base-h, p.Base+h
		if lo < p.Low {
			lo = p.Low
		}
		if hi > p.High {
			hi = p.High
		}
		mLo, err := solveAt(solve, nominal, p.Name, lo)
		if err != nil {
			return nil, err
		}
		mHi, err := solveAt(solve, nominal, p.Name, hi)
		if err != nil {
			return nil, err
		}
		if hi > lo && base != 0 && p.Base != 0 {
			e.Elasticity = (mHi - mLo) / (hi - lo) * p.Base / base
		}
		mLow, err := solveAt(solve, nominal, p.Name, p.Low)
		if err != nil {
			return nil, err
		}
		mHigh, err := solveAt(solve, nominal, p.Name, p.High)
		if err != nil {
			return nil, err
		}
		e.Swing = mHigh - mLow
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		return abs(entries[i].Swing) > abs(entries[j].Swing)
	})
	return entries, nil
}

func solveAt(solve MultiSolver, nominal map[string]float64, name string, v float64) (float64, error) {
	a := clone(nominal)
	a[name] = v
	m, err := solve(a)
	if err != nil {
		return 0, fmt.Errorf("importance of %s at %g: %w", name, v, err)
	}
	return m, nil
}

func clone(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
