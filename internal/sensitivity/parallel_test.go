package sensitivity

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestSweepWithParallelismIsBitIdentical compares serial and parallel
// drives of the same solver: the returned points must match bit for bit at
// every parallelism level, since points are written by index.
func TestSweepWithParallelismIsBitIdentical(t *testing.T) {
	t.Parallel()
	solve := func(v float64) (float64, float64, error) {
		a := 1 - 1e-5*v*v
		return a, (1 - a) * 525600, nil
	}
	want, err := SweepWith(0.5, 3, 40, solve, SweepOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 64} {
		got, err := SweepWith(0.5, 3, 40, solve, SweepOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d points, want %d", par, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: point %d = %+v, want %+v", par, i, got[i], want[i])
			}
		}
	}
}

// TestSweepWithReportsLowestIndexedFailure fails several sweep points and
// checks the error reported is always the lowest-indexed one, regardless
// of which worker hit its failure first.
func TestSweepWithReportsLowestIndexedFailure(t *testing.T) {
	t.Parallel()
	// Values for steps=20 over [0,20] are 0,1,...,20; fail at 7, 13, 19.
	solve := func(v float64) (float64, float64, error) {
		switch v {
		case 7, 13, 19:
			return 0, 0, fmt.Errorf("boom at %g", v)
		}
		return 0.99999, 5, nil
	}
	for _, par := range []int{1, 3, 8} {
		_, err := SweepWith(0, 20, 20, solve, SweepOptions{Parallelism: par})
		if err == nil {
			t.Fatalf("parallelism %d: expected failure", par)
		}
		if !strings.Contains(err.Error(), "sweep at 7") || !strings.Contains(err.Error(), "boom at 7") {
			t.Fatalf("parallelism %d: err = %v, want the failure at value 7", par, err)
		}
	}
}

// TestSweepDelegatesToSweepWith keeps the legacy entry point honest: Sweep
// and a serial SweepWith must agree exactly, including validation errors.
func TestSweepDelegatesToSweepWith(t *testing.T) {
	t.Parallel()
	solve := func(v float64) (float64, float64, error) { return 1 - v*1e-6, v, nil }
	a, err := Sweep(1, 2, 4, solve)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepWith(1, 2, 4, solve, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d: %+v != %+v", i, a[i], b[i])
		}
	}
	if _, err := SweepWith(0, 1, 0, solve, SweepOptions{Parallelism: 4}); !errors.Is(err, ErrBadSweep) {
		t.Fatalf("validation not applied: %v", err)
	}
}
