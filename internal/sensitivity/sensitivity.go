// Package sensitivity implements RAScad-style parametric analysis: sweep a
// single model parameter across a range and record the availability
// measures at each point (the paper's Figures 5 and 6).
package sensitivity

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// ErrBadSweep is reported for invalid sweep specifications.
var ErrBadSweep = errors.New("sensitivity: invalid sweep")

// Point is one sample of a parametric sweep.
type Point struct {
	// Value is the swept parameter value.
	Value float64
	// Availability and YearlyDowntimeMinutes are the system measures at
	// this parameter value.
	Availability          float64
	YearlyDowntimeMinutes float64
}

// Solver evaluates the model at one parameter value and returns
// (availability, yearly downtime minutes).
type Solver func(value float64) (availability, downtimeMinutes float64, err error)

// SweepOptions tunes how a sweep is driven. The zero value is a serial
// sweep.
type SweepOptions struct {
	// Parallelism is the number of worker goroutines evaluating sweep
	// points (default 1). The results are identical at any parallelism:
	// points are written by index, and on failure the error reported is the
	// one from the lowest-indexed failing point. The solver must be safe
	// for concurrent use (the jsas solvers are).
	Parallelism int
}

// Sweep evaluates solve at steps+1 evenly spaced values across [from, to]
// (inclusive). steps must be ≥ 1 and from < to.
func Sweep(from, to float64, steps int, solve Solver) ([]Point, error) {
	return SweepWith(from, to, steps, solve, SweepOptions{})
}

// SweepWith is Sweep with driver options (parallel evaluation).
func SweepWith(from, to float64, steps int, solve Solver, opts SweepOptions) ([]Point, error) {
	if solve == nil {
		return nil, fmt.Errorf("nil solver: %w", ErrBadSweep)
	}
	if steps < 1 {
		return nil, fmt.Errorf("steps = %d, want ≥ 1: %w", steps, ErrBadSweep)
	}
	if from >= to {
		return nil, fmt.Errorf("empty range [%g, %g]: %w", from, to, ErrBadSweep)
	}
	n := steps + 1
	parallelism := opts.Parallelism
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > n {
		parallelism = n
	}
	span := trace.Default().Start("sensitivity.sweep", nil,
		trace.String(trace.AttrTrack, "solver"),
		trace.Int("steps", int64(steps)),
		trace.Int("parallelism", int64(parallelism)))

	values := make([]float64, n)
	for i := range values {
		values[i] = from + (to-from)*float64(i)/float64(steps)
	}
	points := make([]Point, n)

	// Failure bookkeeping mirrors uncertainty.solveAll: a shared atomic
	// holds the lowest failing index seen so workers drain promptly, and
	// the error finally returned is the one from the lowest-indexed failing
	// point among those attempted — independent of goroutine scheduling.
	var (
		minFail atomic.Int64
		mu      sync.Mutex
		minIdx  = -1
		minErr  error
	)
	minFail.Store(math.MaxInt64)
	recordFail := func(i int, err error) {
		mu.Lock()
		if minIdx == -1 || i < minIdx {
			minIdx, minErr = i, err
		}
		mu.Unlock()
		for {
			cur := minFail.Load()
			if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			track := "solver"
			if parallelism > 1 {
				track = fmt.Sprintf("worker-%d", worker)
			}
			for i := range indices {
				if int64(i) > minFail.Load() {
					continue
				}
				v := values[i]
				ps := trace.Default().Start("sensitivity.point", span,
					trace.String(trace.AttrTrack, track),
					trace.Int(trace.AttrIndex, int64(i)),
					trace.Float("value", v))
				a, d, err := solve(v)
				ps.End()
				if err != nil {
					recordFail(i, err)
					continue
				}
				points[i] = Point{Value: v, Availability: a, YearlyDowntimeMinutes: d}
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()

	if minIdx >= 0 {
		span.Attr(trace.Bool("error", true))
		span.End()
		return nil, fmt.Errorf("sweep at %g: %w", values[minIdx], minErr)
	}
	span.End()
	return points, nil
}

// CrossingBelow returns the first swept value at which availability falls
// below the threshold, interpolating linearly between bracketing points.
// ok is false if availability never crosses.
func CrossingBelow(points []Point, threshold float64) (value float64, ok bool) {
	for i, p := range points {
		if p.Availability < threshold {
			if i == 0 {
				return p.Value, true
			}
			prev := points[i-1]
			da := prev.Availability - p.Availability
			if da <= 0 {
				return p.Value, true
			}
			frac := (prev.Availability - threshold) / da
			return prev.Value + frac*(p.Value-prev.Value), true
		}
	}
	return 0, false
}

// MaxDelta returns the largest availability difference across the sweep —
// a summary of how sensitive the measure is to the parameter.
func MaxDelta(points []Point) float64 {
	if len(points) == 0 {
		return 0
	}
	lo, hi := points[0].Availability, points[0].Availability
	for _, p := range points[1:] {
		if p.Availability < lo {
			lo = p.Availability
		}
		if p.Availability > hi {
			hi = p.Availability
		}
	}
	return hi - lo
}
