// Package sensitivity implements RAScad-style parametric analysis: sweep a
// single model parameter across a range and record the availability
// measures at each point (the paper's Figures 5 and 6).
package sensitivity

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/pool"
	"repro/internal/progress"
	"repro/internal/trace"
)

// ErrBadSweep is reported for invalid sweep specifications.
var ErrBadSweep = errors.New("sensitivity: invalid sweep")

// Point is one sample of a parametric sweep.
type Point struct {
	// Value is the swept parameter value.
	Value float64
	// Availability and YearlyDowntimeMinutes are the system measures at
	// this parameter value.
	Availability          float64
	YearlyDowntimeMinutes float64
}

// Solver evaluates the model at one parameter value and returns
// (availability, yearly downtime minutes).
type Solver func(value float64) (availability, downtimeMinutes float64, err error)

// SweepOptions tunes how a sweep is driven. The zero value is a serial
// sweep.
type SweepOptions struct {
	// Parallelism is the number of worker goroutines evaluating sweep
	// points (default 1). The results are identical at any parallelism:
	// points are written by index, and on failure the error reported is the
	// one from the lowest-indexed failing point. The solver must be safe
	// for concurrent use (the jsas solvers are).
	Parallelism int
	// Progress, if set, receives one Done() per attempted sweep point (via
	// the pool's OnTaskDone hook). nil (the default) costs nothing.
	Progress *progress.Tracker
}

// Sweep evaluates solve at steps+1 evenly spaced values across [from, to]
// (inclusive). steps must be ≥ 1 and from < to.
func Sweep(from, to float64, steps int, solve Solver) ([]Point, error) {
	return SweepWith(from, to, steps, solve, SweepOptions{})
}

// SweepWith is Sweep with driver options (parallel evaluation).
func SweepWith(from, to float64, steps int, solve Solver, opts SweepOptions) ([]Point, error) {
	return SweepWithCtx(context.Background(), from, to, steps, solve, opts)
}

// SweepWithCtx is SweepWith with cancellation: a canceled ctx stops
// dispatching sweep points within one pool-task granularity and the sweep
// returns ctx.Err() (no points — a sweep with holes would silently skew
// crossing and delta summaries).
func SweepWithCtx(ctx context.Context, from, to float64, steps int, solve Solver, opts SweepOptions) ([]Point, error) {
	if solve == nil {
		return nil, fmt.Errorf("nil solver: %w", ErrBadSweep)
	}
	if steps < 1 {
		return nil, fmt.Errorf("steps = %d, want ≥ 1: %w", steps, ErrBadSweep)
	}
	if from >= to {
		return nil, fmt.Errorf("empty range [%g, %g]: %w", from, to, ErrBadSweep)
	}
	n := steps + 1
	parallelism := opts.Parallelism
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > n {
		parallelism = n
	}
	span := trace.Default().Start("sensitivity.sweep", nil,
		trace.String(trace.AttrTrack, "solver"),
		trace.Int("steps", int64(steps)),
		trace.Int("parallelism", int64(parallelism)))

	values := make([]float64, n)
	for i := range values {
		values[i] = from + (to-from)*float64(i)/float64(steps)
	}
	points := make([]Point, n)

	// The shared deterministic index-keyed pool (internal/pool) writes
	// points by index and, on failure, drains promptly while reporting the
	// error from the lowest-indexed failing point among those attempted —
	// independent of goroutine scheduling.
	popts := pool.Options{Workers: parallelism}
	if opts.Progress != nil {
		popts.OnTaskDone = func(int) { opts.Progress.Done() }
	}
	err := pool.Run(ctx, n, popts, func(worker, i int) error {
		track := "solver"
		if parallelism > 1 {
			track = fmt.Sprintf("worker-%d", worker)
		}
		v := values[i]
		ps := trace.Default().Start("sensitivity.point", span,
			trace.String(trace.AttrTrack, track),
			trace.Int(trace.AttrIndex, int64(i)),
			trace.Float("value", v))
		a, d, err := solve(v)
		ps.End()
		if err != nil {
			return fmt.Errorf("sweep at %g: %w", v, err)
		}
		points[i] = Point{Value: v, Availability: a, YearlyDowntimeMinutes: d}
		return nil
	})
	if err != nil {
		span.Attr(trace.Bool("error", true))
		span.End()
		return nil, err
	}
	span.End()
	return points, nil
}

// CrossingBelow returns the first swept value at which availability falls
// below the threshold, interpolating linearly between bracketing points.
// ok is false if availability never crosses.
func CrossingBelow(points []Point, threshold float64) (value float64, ok bool) {
	for i, p := range points {
		if p.Availability < threshold {
			if i == 0 {
				return p.Value, true
			}
			prev := points[i-1]
			da := prev.Availability - p.Availability
			if da <= 0 {
				return p.Value, true
			}
			frac := (prev.Availability - threshold) / da
			return prev.Value + frac*(p.Value-prev.Value), true
		}
	}
	return 0, false
}

// MaxDelta returns the largest availability difference across the sweep —
// a summary of how sensitive the measure is to the parameter.
func MaxDelta(points []Point) float64 {
	if len(points) == 0 {
		return 0
	}
	lo, hi := points[0].Availability, points[0].Availability
	for _, p := range points[1:] {
		if p.Availability < lo {
			lo = p.Availability
		}
		if p.Availability > hi {
			hi = p.Availability
		}
	}
	return hi - lo
}
