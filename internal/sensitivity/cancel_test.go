package sensitivity

import (
	"context"
	"errors"
	"testing"
)

// TestSweepWithCtxCanceled: a canceled sweep returns the cancellation,
// not a partial point set (a truncated curve would misread as a full
// sweep in downstream plots).
func TestSweepWithCtxCanceled(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	solve := func(v float64) (float64, float64, error) { return 1 - v/100, v, nil }
	pts, err := SweepWithCtx(ctx, 0, 1, 10, solve, SweepOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if pts != nil {
		t.Errorf("canceled sweep returned %d points; want none", len(pts))
	}
}

// TestSweepWithCtxLiveMatchesSweep: a live context leaves the sweep
// byte-identical to the background-context API.
func TestSweepWithCtxLiveMatchesSweep(t *testing.T) {
	t.Parallel()
	solve := func(v float64) (float64, float64, error) { return 1 - v/100, v, nil }
	a, err := SweepWith(0, 1, 8, solve, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepWithCtx(context.Background(), 0, 1, 8, solve, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("point counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
