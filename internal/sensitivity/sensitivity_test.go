package sensitivity

import (
	"errors"
	"math"
	"testing"
)

func linearSolver(t *testing.T) Solver {
	t.Helper()
	// Availability declines linearly with the parameter.
	return func(v float64) (float64, float64, error) {
		a := 1 - 1e-5*v
		return a, (1 - a) * 525600, nil
	}
}

func TestSweepBasic(t *testing.T) {
	t.Parallel()
	pts, err := Sweep(0.5, 3, 10, linearSolver(t))
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(pts) != 11 {
		t.Fatalf("points = %d, want 11", len(pts))
	}
	if pts[0].Value != 0.5 || pts[10].Value != 3 {
		t.Errorf("endpoints = %v, %v", pts[0].Value, pts[10].Value)
	}
	// Evenly spaced.
	for i := 1; i < len(pts); i++ {
		if math.Abs((pts[i].Value-pts[i-1].Value)-0.25) > 1e-12 {
			t.Errorf("uneven step at %d", i)
		}
	}
	// Monotone availability for the linear solver.
	for i := 1; i < len(pts); i++ {
		if pts[i].Availability >= pts[i-1].Availability {
			t.Errorf("availability not declining at %d", i)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	t.Parallel()
	if _, err := Sweep(0, 1, 10, nil); !errors.Is(err, ErrBadSweep) {
		t.Errorf("nil solver: err = %v", err)
	}
	if _, err := Sweep(0, 1, 0, linearSolver(t)); !errors.Is(err, ErrBadSweep) {
		t.Errorf("0 steps: err = %v", err)
	}
	if _, err := Sweep(2, 1, 10, linearSolver(t)); !errors.Is(err, ErrBadSweep) {
		t.Errorf("reversed range: err = %v", err)
	}
	failing := func(float64) (float64, float64, error) {
		return 0, 0, errors.New("boom")
	}
	if _, err := Sweep(0, 1, 2, failing); err == nil {
		t.Error("solver failure should propagate")
	}
}

func TestCrossingBelow(t *testing.T) {
	t.Parallel()
	pts, err := Sweep(0, 10, 10, linearSolver(t))
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	// a(v) = 1 − 1e-5·v crosses 0.99996 at v = 4.
	v, ok := CrossingBelow(pts, 0.99996)
	if !ok {
		t.Fatal("no crossing found")
	}
	if math.Abs(v-4) > 1e-9 {
		t.Errorf("crossing = %v, want 4", v)
	}
	// Threshold below the whole sweep: no crossing.
	if _, ok := CrossingBelow(pts, 0.5); ok {
		t.Error("found crossing below entire sweep")
	}
	// Threshold above the first point: crossing at first value.
	v, ok = CrossingBelow(pts, 2)
	if !ok || v != 0 {
		t.Errorf("crossing = %v,%v, want 0,true", v, ok)
	}
}

func TestMaxDelta(t *testing.T) {
	t.Parallel()
	pts := []Point{{Availability: 0.9999}, {Availability: 0.99995}, {Availability: 0.99991}}
	if got := MaxDelta(pts); math.Abs(got-5e-5) > 1e-15 {
		t.Errorf("MaxDelta = %v, want 5e-5", got)
	}
	if MaxDelta(nil) != 0 {
		t.Error("MaxDelta(nil) != 0")
	}
}
