package sensitivity

import (
	"errors"
	"math"
	"testing"
)

// quadSolver returns m = 2x + 10y² + 3 for a synthetic importance study
// with known elasticities.
func quadSolver(a map[string]float64) (float64, error) {
	return 2*a["x"] + 10*a["y"]*a["y"] + 3, nil
}

func TestImportanceKnownElasticities(t *testing.T) {
	t.Parallel()
	params := []ImportanceRange{
		{Name: "x", Base: 1, Low: 0, High: 2},
		{Name: "y", Base: 1, Low: 0, High: 2},
	}
	entries, err := Importance(params, quadSolver)
	if err != nil {
		t.Fatalf("Importance: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(entries))
	}
	byName := map[string]ImportanceEntry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	// m(1,1) = 15; ∂m/∂x = 2 → elasticity 2·1/15 ≈ 0.1333.
	if got := byName["x"].Elasticity; math.Abs(got-2.0/15) > 1e-6 {
		t.Errorf("x elasticity = %v, want %v", got, 2.0/15)
	}
	// ∂m/∂y = 20y = 20 → elasticity 20/15 ≈ 1.333.
	if got := byName["y"].Elasticity; math.Abs(got-20.0/15) > 1e-3 {
		t.Errorf("y elasticity = %v, want %v", got, 20.0/15)
	}
	// Swings: x over [0,2] → Δm = 4; y over [0,2] → Δm = 40.
	if got := byName["x"].Swing; math.Abs(got-4) > 1e-9 {
		t.Errorf("x swing = %v, want 4", got)
	}
	if got := byName["y"].Swing; math.Abs(got-40) > 1e-9 {
		t.Errorf("y swing = %v, want 40", got)
	}
	// Sorted by |swing| descending: y first.
	if entries[0].Name != "y" {
		t.Errorf("ranking = %v, want y first", entries[0].Name)
	}
}

func TestImportanceBoundaryBase(t *testing.T) {
	t.Parallel()
	// Base at the range edge: central difference clips to the range but
	// still produces a finite elasticity.
	params := []ImportanceRange{{Name: "x", Base: 2, Low: 0, High: 2}}
	entries, err := Importance(params, quadSolver)
	if err != nil {
		t.Fatalf("Importance: %v", err)
	}
	if entries[0].Elasticity == 0 {
		t.Error("boundary base produced zero elasticity")
	}
}

func TestImportanceDegenerateRange(t *testing.T) {
	t.Parallel()
	// Zero-width range: no swing, no elasticity, no error.
	params := []ImportanceRange{{Name: "x", Base: 1, Low: 1, High: 1}}
	entries, err := Importance(params, quadSolver)
	if err != nil {
		t.Fatalf("Importance: %v", err)
	}
	if entries[0].Swing != 0 || entries[0].Elasticity != 0 {
		t.Errorf("degenerate range: %+v", entries[0])
	}
}

func TestImportanceErrors(t *testing.T) {
	t.Parallel()
	good := []ImportanceRange{{Name: "x", Base: 1, Low: 0, High: 2}}
	if _, err := Importance(nil, quadSolver); !errors.Is(err, ErrBadSweep) {
		t.Errorf("no params: err = %v", err)
	}
	if _, err := Importance(good, nil); !errors.Is(err, ErrBadSweep) {
		t.Errorf("nil solver: err = %v", err)
	}
	bad := []ImportanceRange{{Name: "x", Base: 9, Low: 0, High: 2}}
	if _, err := Importance(bad, quadSolver); !errors.Is(err, ErrBadSweep) {
		t.Errorf("base outside range: err = %v", err)
	}
	dup := []ImportanceRange{
		{Name: "x", Base: 1, Low: 0, High: 2},
		{Name: "x", Base: 1, Low: 0, High: 2},
	}
	if _, err := Importance(dup, quadSolver); !errors.Is(err, ErrBadSweep) {
		t.Errorf("duplicate: err = %v", err)
	}
	failing := func(map[string]float64) (float64, error) { return 0, errors.New("boom") }
	if _, err := Importance(good, failing); err == nil {
		t.Error("solver failure should propagate")
	}
}
