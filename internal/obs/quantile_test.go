package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{1, 2, 4})
	// 10 observations in (1,2]: uniform interpolation across the bucket.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	// p50 → rank 5 of 10 in bucket (1,2]: 1 + (2-1)*5/10 = 1.5.
	if got := h.Quantile(0.5); got != 1.5 {
		t.Fatalf("p50 = %v, want 1.5", got)
	}
	// p100 → top of the bucket.
	if got := h.Quantile(1); got != 2 {
		t.Fatalf("p100 = %v, want 2", got)
	}
}

func TestHistogramQuantileSpansBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{1, 2, 4})
	for i := 0; i < 8; i++ {
		h.Observe(0.5) // bucket (0,1]
	}
	for i := 0; i < 2; i++ {
		h.Observe(3) // bucket (2,4]
	}
	// p50 → rank 5 of 10, inside the first bucket: 0 + 1*5/8 = 0.625.
	if got := h.Quantile(0.5); got != 0.625 {
		t.Fatalf("p50 = %v, want 0.625", got)
	}
	// p90 → rank 9, second observation group: 2 + 2*(9-8)/2 = 3.
	if got := h.Quantile(0.9); got != 3 {
		t.Fatalf("p90 = %v, want 3", got)
	}
}

func TestHistogramQuantileOverflowClampsToLastBound(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{1, 2})
	h.Observe(100) // +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("p99 of overflow-only histogram = %v, want last finite bound 2", got)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{1})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("quantile of empty histogram = %v, want 0", got)
	}
}

func TestSnapshotCarriesQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	var snap SeriesSnapshot
	for _, s := range r.Snapshot() {
		if s.Name == "lat" {
			snap = s
		}
	}
	if snap.P50 == 0 || snap.P95 == 0 || snap.P99 == 0 {
		t.Fatalf("quantiles missing from snapshot: %+v", snap)
	}
	if snap.P50 > snap.P95 || snap.P95 > snap.P99 {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", snap.P50, snap.P95, snap.P99)
	}

	// Quantiles reach the JSON renderer…
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"p95"`) {
		t.Fatalf("JSON export missing p95:\n%s", buf.String())
	}
	// …but the Prometheus text exposition stays unchanged.
	buf.Reset()
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "p95") || strings.Contains(buf.String(), "quantile") {
		t.Fatalf("text exposition gained quantile series:\n%s", buf.String())
	}
}

func TestSnapshotEmptyHistogramOmitsQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat", "", []float64{1})
	snap := r.Snapshot()[0]
	if snap.P50 != 0 || snap.P95 != 0 || snap.P99 != 0 {
		t.Fatalf("empty histogram exported quantiles: %+v", snap)
	}
	// omitempty: the keys should be absent from JSON entirely.
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "p50") {
		t.Fatalf("empty histogram JSON carries p50: %s", b)
	}
}

func TestTimedSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Inc()
	before := time.Now().Add(-time.Second)
	snap := r.TimedSnapshot()
	at, err := time.Parse(time.RFC3339Nano, snap.ScrapedAt)
	if err != nil {
		t.Fatalf("ScrapedAt %q unparseable: %v", snap.ScrapedAt, err)
	}
	if at.Before(before) || at.After(time.Now().Add(time.Second)) {
		t.Fatalf("ScrapedAt %v outside the scrape window", at)
	}
	if len(snap.Series) != 1 || snap.Series[0].Name != "c" {
		t.Fatalf("series = %+v", snap.Series)
	}
}

func TestQuantileFromBucketsClamping(t *testing.T) {
	bounds := []float64{1, math.Inf(1)}
	counts := []int64{4, 0}
	if got := quantileFromBuckets(bounds, counts, -0.5); got != 0 {
		t.Fatalf("q<0 = %v, want 0 (clamped to min)", got)
	}
	if got := quantileFromBuckets(bounds, counts, 2); got != 1 {
		t.Fatalf("q>1 = %v, want 1 (clamped to max)", got)
	}
}
