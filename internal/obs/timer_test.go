package obs

import (
	"testing"
	"time"
)

func TestTimerObservesIntoHistogram(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	h := reg.Histogram("op_seconds", "", DurationBuckets)
	timer := StartTimer(h)
	d := timer.Stop()
	if d < 0 {
		t.Fatalf("elapsed = %v", d)
	}
	if got := h.Count(); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
}

func TestTimerNilHistogram(t *testing.T) {
	t.Parallel()
	timer := StartTimer(nil)
	if d := timer.Stop(); d < 0 {
		t.Errorf("elapsed = %v", d)
	}
}

func TestSinceDeferPattern(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	h := reg.Histogram("op_seconds", "", DurationBuckets)
	func() {
		defer Since(h)()
		time.Sleep(time.Millisecond)
	}()
	if got := h.Count(); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
	if h.Sum() <= 0 {
		t.Errorf("sum = %v, want > 0 after a 1ms sleep", h.Sum())
	}
}
