package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("solves_total", "solves")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("residual", "last residual")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %g, want 1", got)
	}
	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-12 {
		t.Fatalf("histogram sum = %g, want 56.05", h.Sum())
	}
	bounds, counts := h.Buckets()
	wantCounts := []int64{1, 2, 1, 1}
	if len(bounds) != 4 || !math.IsInf(bounds[3], 1) {
		t.Fatalf("bounds = %v, want 3 finite + +Inf", bounds)
	}
	for i, want := range wantCounts {
		if counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], want, counts)
		}
	}
}

func TestRegistryIdempotentAndLabeled(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", "req", `route="/v1/solve"`)
	b := r.Counter("requests_total", "req", `route="/v1/solve"`)
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := r.Counter("requests_total", "req", `route="/healthz"`)
	if a == other {
		t.Fatal("distinct labels returned the same counter")
	}
	a.Inc()
	other.Add(2)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		`requests_total{route="/healthz"} 2`,
		`requests_total{route="/v1/solve"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text export missing %q:\n%s", want, text)
		}
	}
}

func TestWriteTextHistogramFormat(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("solve_seconds", "solve latency", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE solve_seconds histogram",
		`solve_seconds_bucket{le="0.01"} 1`,
		`solve_seconds_bucket{le="0.1"} 2`,
		`solve_seconds_bucket{le="+Inf"} 3`,
		"solve_seconds_sum 5.055",
		"solve_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text export missing %q:\n%s", want, text)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(3)
	r.Gauge("b", "").Set(2.5)
	r.Histogram("c_seconds", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snaps []SeriesSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snaps); err != nil {
		t.Fatalf("invalid JSON export: %v\n%s", err, buf.String())
	}
	if len(snaps) != 3 {
		t.Fatalf("got %d series, want 3", len(snaps))
	}
	if snaps[0].Name != "a_total" || snaps[0].Value != 3 {
		t.Fatalf("first series = %+v, want a_total=3", snaps[0])
	}
	if snaps[2].Name != "c_seconds" || snaps[2].Count != 1 {
		t.Fatalf("third series = %+v, want c_seconds count 1", snaps[2])
	}
}

// TestConcurrentUpdates hammers one counter, gauge, and histogram from
// many goroutines; run under -race this is the package's data-race gate,
// and the final counts must be exact.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Lazy lookups race on the registry map on purpose.
				r.Counter("events_total", "").Inc()
				r.Gauge("level", "").Add(1)
				r.Histogram("dur_seconds", "", DurationBuckets).Observe(float64(i%10) / 100)
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WriteText(&buf); err != nil {
						t.Errorf("worker %d: WriteText: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	const total = workers * perWorker
	if got := r.Counter("events_total", "").Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("level", "").Value(); got != total {
		t.Errorf("gauge = %g, want %d", got, total)
	}
	h := r.Histogram("dur_seconds", "", DurationBuckets)
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	_, counts := h.Buckets()
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != total {
		t.Errorf("bucket counts sum to %d, want %d", sum, total)
	}
}

// TestRenderDuringSeriesCreation reproduces the scrape-vs-first-use race:
// series are created lazily on hot paths (a fresh label set per solver
// method, per testbed component), so a GET /metrics render can overlap
// the first lookup of a new series. Renderers must copy each family's
// series set under the registry lock — under -race this test fails with
// "concurrent map iteration and map write" if they iterate the live map.
func TestRenderDuringSeriesCreation(t *testing.T) {
	r := NewRegistry()
	r.Counter("churn_total", "", `i="seed"`).Inc()
	const creators = 4
	var created atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < creators; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Fresh labels every iteration force new-series insertion
				// into existing families while renders are in flight.
				label := fmt.Sprintf("i=%q", strconv.Itoa(w*1_000_000+i))
				r.Counter("churn_total", "", label).Inc()
				r.Gauge("churn_level", "", label).Set(float64(i))
				r.Histogram("churn_seconds", "", []float64{1, 10}, label).Observe(0.5)
				created.Add(1)
			}
		}(w)
	}
	// Keep rendering until the creators have demonstrably run alongside
	// the renders, so creation and iteration genuinely overlap rather
	// than the renders finishing before the goroutines get scheduled.
	for i := 0; i < 300 || created.Load() < 2000; i++ {
		if err := r.WriteText(io.Discard); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		if err := r.WriteSummary(io.Discard); err != nil {
			t.Fatalf("WriteSummary: %v", err)
		}
		if snaps := r.Snapshot(); len(snaps) == 0 {
			t.Fatal("Snapshot returned no series despite the seed counter")
		}
	}
	close(stop)
	wg.Wait()
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}
