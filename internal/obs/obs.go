// Package obs is a small, dependency-free metrics and diagnostics layer
// for the modeling engine: atomic counters, gauges, and fixed-bucket
// histograms collected in a registry that exports Prometheus-style text
// and JSON. Every hot layer (sparse/ctmc solves, uncertainty runs, the
// testbed DES, the HTTP API) reports here, so that numerical shortcuts —
// dense fallbacks, slow convergence, worker starvation — are visible
// instead of silent.
//
// The package is deliberately minimal: no external deps, no label maps
// (label sets are pre-formatted strings), no exemplars. Metrics are
// registered lazily and idempotently: the first call for a (name, labels)
// pair creates the series, later calls return the same instance, so call
// sites do not need package-level variables (though hot paths may keep
// them to skip the registry lookup).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters only
// go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the gauge (CAS loop; safe for concurrent use).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative-style buckets
// (Prometheus semantics: bucket i counts observations ≤ Bounds[i], plus
// an implicit +Inf bucket) and tracks the running sum and count.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    Gauge          // atomic float accumulator
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Mean returns the mean observation (0 before the first observation).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Buckets returns the bucket upper bounds and their (non-cumulative)
// counts; the final entry pairs +Inf with the overflow count.
func (h *Histogram) Buckets() ([]float64, []int64) {
	bounds := append(append([]float64(nil), h.bounds...), math.Inf(1))
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Quantile estimates the q-th quantile (q in [0,1]) from the bucket
// counts by linear interpolation within the containing bucket — the
// Prometheus histogram_quantile convention: the first bucket's lower
// edge is taken as 0, and a quantile landing in the +Inf bucket clamps
// to the highest finite bound. Returns 0 before the first observation.
// The estimate is bucket-resolution accurate, not exact.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, counts := h.Buckets()
	return quantileFromBuckets(bounds, counts, q)
}

// quantileFromBuckets is the interpolation shared by Histogram.Quantile
// and snapshot rendering (which already holds a bucket copy). bounds has
// the +Inf entry last; counts are non-cumulative.
func quantileFromBuckets(bounds []float64, counts []int64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if math.IsInf(bounds[i], 1) {
			// Overflow bucket: no upper edge to interpolate toward.
			if i == 0 {
				return 0
			}
			return bounds[i-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		if c == 0 {
			return bounds[i]
		}
		return lower + (bounds[i]-lower)*(rank-float64(prev))/float64(c)
	}
	// Unreachable: cum == total >= rank by the final iteration.
	return bounds[len(bounds)-1]
}

// kind discriminates the metric families in a registry.
type kind int

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// series is one (name, labels) time series.
type series struct {
	labels string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	kind   kind
	help   string
	bounds []float64 // histogram families only
	series map[string]*series
}

// Registry holds metric families. The zero value is not usable; construct
// with NewRegistry or use the process-wide Default registry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry the engine's packages
// report into; the HTTP API serves it at GET /metrics.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// lookup finds or creates the family and series for (name, labels),
// enforcing kind consistency. Labels must be pre-formatted Prometheus
// pairs, e.g. `route="/v1/solve"` — or empty.
func (r *Registry) lookup(name string, k kind, help, labels string, bounds []float64) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: k, help: help, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, k))
	}
	s := f.series[labels]
	if s == nil {
		s = &series{labels: labels}
		switch k {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = newHistogram(f.bounds)
		}
		f.series[labels] = s
	}
	return s
}

// Counter returns the named counter (creating it on first use). labels is
// an optional pre-formatted Prometheus label set, e.g. `kind="hw"`.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.lookup(name, kindCounter, help, joinLabels(labels), nil).c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.lookup(name, kindGauge, help, joinLabels(labels), nil).g
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket upper bounds (ignored on later calls).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return r.lookup(name, kindHistogram, help, joinLabels(labels), bounds).h
}

func joinLabels(labels []string) string {
	var parts []string
	for _, l := range labels {
		if l != "" {
			parts = append(parts, l)
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Package-level conveniences targeting the Default registry.

// C returns a counter from the default registry.
func C(name, help string, labels ...string) *Counter {
	return defaultRegistry.Counter(name, help, labels...)
}

// G returns a gauge from the default registry.
func G(name, help string, labels ...string) *Gauge {
	return defaultRegistry.Gauge(name, help, labels...)
}

// H returns a histogram from the default registry.
func H(name, help string, bounds []float64, labels ...string) *Histogram {
	return defaultRegistry.Histogram(name, help, bounds, labels...)
}

// DurationBuckets is a general-purpose latency bucket ladder in seconds,
// spanning microsecond solves to multi-minute Monte-Carlo runs.
var DurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 1, 5, 30, 120,
}

// IterationBuckets is a bucket ladder for solver sweep/iteration counts.
var IterationBuckets = []float64{
	1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000,
}

// familyView is a point-in-time copy of one family's metadata and series
// set. Renderers iterate views instead of the live family maps: lookup
// inserts series (lazily, on hot paths) under the write lock, so touching
// f.series after the registry lock is released would race with creation.
type familyView struct {
	name   string
	kind   kind
	help   string
	series []*series
}

// snapshotFamilies copies every family — including its series slice —
// while holding the registry lock, then sorts by (name, labels). The
// series values themselves stay live (their atomics are safe to read
// concurrently); only the map iteration needs the lock.
func (r *Registry) snapshotFamilies() []familyView {
	r.mu.RLock()
	out := make([]familyView, 0, len(r.families))
	for _, f := range r.families {
		fv := familyView{name: f.name, kind: f.kind, help: f.help,
			series: make([]*series, 0, len(f.series))}
		for _, s := range f.series {
			fv.series = append(fv.series, s)
		}
		out = append(out, fv)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	for i := range out {
		s := out[i].series
		sort.Slice(s, func(a, b int) bool { return s[a].labels < s[b].labels })
	}
	return out
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WriteText(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeriesText(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeriesText(w io.Writer, f familyView, s *series) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name, s.labels, ""), s.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(f.name, s.labels, ""), formatFloat(s.g.Value()))
		return err
	case kindHistogram:
		bounds, counts := s.h.Buckets()
		var cum int64
		for i, b := range bounds {
			cum += counts[i]
			le := formatFloat(b)
			if math.IsInf(b, 1) {
				le = "+Inf"
			}
			name := seriesName(f.name+"_bucket", s.labels, fmt.Sprintf("le=%q", le))
			if _, err := fmt.Fprintf(w, "%s %d\n", name, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(f.name+"_sum", s.labels, ""), formatFloat(s.h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name+"_count", s.labels, ""), s.h.Count())
		return err
	}
	return nil
}

// seriesName renders name{labels,extra} with empty parts elided.
func seriesName(name, labels, extra string) string {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all == "" {
		return name
	}
	return name + "{" + all + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SeriesSnapshot is one exported time series, for JSON export and CLI
// --stats reports.
type SeriesSnapshot struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Kind   string `json:"kind"`
	Help   string `json:"help,omitempty"`
	// Value is the current counter or gauge value. Not omitempty: a
	// metric legitimately at 0 must stay distinguishable from absent.
	Value float64 `json:"value"`
	// Histogram fields. Count and Sum are likewise always emitted so an
	// empty histogram exports count=0 rather than dropping the fields.
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
	// P50/P95/P99 are bucket-interpolated quantile estimates (see
	// Histogram.Quantile), populated for non-empty histograms only. The
	// Prometheus text exposition is unchanged — quantiles are derived,
	// not stored, so scrapers keep computing their own.
	P50 float64 `json:"p50,omitempty"`
	P95 float64 `json:"p95,omitempty"`
	P99 float64 `json:"p99,omitempty"`
}

// Snapshot returns every series in (name, labels) order.
func (r *Registry) Snapshot() []SeriesSnapshot {
	var out []SeriesSnapshot
	for _, f := range r.snapshotFamilies() {
		for _, s := range f.series {
			snap := SeriesSnapshot{Name: f.name, Labels: s.labels, Kind: f.kind.String(), Help: f.help}
			switch f.kind {
			case kindCounter:
				snap.Value = float64(s.c.Value())
			case kindGauge:
				snap.Value = s.g.Value()
			case kindHistogram:
				snap.Count = s.h.Count()
				snap.Sum = s.h.Sum()
				bounds, counts := s.h.Buckets()
				if snap.Count > 0 {
					snap.P50 = quantileFromBuckets(bounds, counts, 0.50)
					snap.P95 = quantileFromBuckets(bounds, counts, 0.95)
					snap.P99 = quantileFromBuckets(bounds, counts, 0.99)
				}
				// The +Inf bound does not survive JSON; export finite
				// bounds and keep its count as the final bucket entry.
				snap.Bounds = bounds[:len(bounds)-1]
				snap.Buckets = counts
			}
			out = append(out, snap)
		}
	}
	return out
}

// WriteJSON renders the registry snapshot as a JSON array. (The array
// shape predates RegistrySnapshot and stays stable for existing
// consumers; timestamped scrapes use TimedSnapshot.)
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// RegistrySnapshot pairs one scrape's series with the wall-clock time it
// was taken, so snapshots — and the SSE frames built from them — are
// orderable and rate calculations have a denominator.
type RegistrySnapshot struct {
	// ScrapedAt is the scrape wall-clock time, RFC 3339 with nanoseconds.
	ScrapedAt string           `json:"scrapedAt"`
	Series    []SeriesSnapshot `json:"series"`
}

// TimedSnapshot returns the registry snapshot stamped with the current
// wall-clock time.
func (r *Registry) TimedSnapshot() RegistrySnapshot {
	return RegistrySnapshot{
		ScrapedAt: time.Now().UTC().Format(time.RFC3339Nano),
		Series:    r.Snapshot(),
	}
}

// WriteSummary renders a compact human-readable report (for CLI --stats):
// counters and gauges one per line, histograms with count/mean/max bucket.
func (r *Registry) WriteSummary(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		for _, s := range f.series {
			name := seriesName(f.name, s.labels, "")
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "  %-48s %d\n", name, s.c.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "  %-48s %g\n", name, s.g.Value())
			case kindHistogram:
				if s.h.Count() == 0 {
					continue
				}
				_, err = fmt.Fprintf(w, "  %-48s count=%d mean=%.6g sum=%.6g\n",
					name, s.h.Count(), s.h.Mean(), s.h.Sum())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
