package obs

import "time"

// Timer measures one operation's wall time into a seconds histogram,
// replacing the hand-rolled start/`time.Since` pairs at call sites.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer starts timing against h (which may be nil).
func StartTimer(h *Histogram) Timer {
	return Timer{h: h, start: time.Now()}
}

// Stop observes the elapsed time in seconds and returns it, so callers
// that also need the duration (diagnostics, trace spans) measure it once.
// Stopping more than once observes more than once.
func (t Timer) Stop() time.Duration {
	d := time.Since(t.start)
	if t.h != nil {
		t.h.Observe(d.Seconds())
	}
	return d
}

// Since observes the elapsed time into h when the returned function runs —
// the one-liner form:
//
//	defer obs.Since(h)()
func Since(h *Histogram) func() {
	t := StartTimer(h)
	return func() { t.Stop() }
}
