package faultinject

import (
	"context"
	"errors"
	"testing"

	"repro/internal/jsas"
)

// afterNCtx cancels after a fixed number of Err() calls, giving a
// deterministic mid-campaign cancellation (RunCtx checks once per
// injection). The campaign loop is single-goroutine, so the plain
// counter is safe.
type afterNCtx struct {
	context.Context
	calls, after int
}

func (c *afterNCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// TestRunCtxCanceledMidCampaign: cancellation between injections keeps
// the completed prefix — the same partial-Report contract as a
// mid-campaign failure — and reports an error wrapping ctx.Err().
func TestRunCtxCanceledMidCampaign(t *testing.T) {
	t.Parallel()
	ctx := &afterNCtx{Context: context.Background(), after: 5}
	rep, err := RunCtx(ctx, Options{
		Config:     jsas.Config1,
		Params:     perfectParams(),
		Seed:       1,
		Injections: 60,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("canceled campaign returned no Report; want the completed prefix")
	}
	if got := len(rep.Injections); got != 5 {
		t.Errorf("completed injections = %d, want 5 (canceled before the 6th)", got)
	}
}

// TestRunReplicatedCtxCanceled: a pre-canceled replicated campaign
// reports the cancellation; completed replicas (none here) are pooled.
func TestRunReplicatedCtxCanceled(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunReplicatedCtx(ctx, ReplicatedOptions{
		Options: Options{
			Config:     jsas.Config1,
			Params:     perfectParams(),
			Seed:       1,
			Injections: 40,
		},
		Replicas: 4,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCtxLiveMatchesRun: a live context reproduces Run exactly — the
// cancellation checks must not perturb the deterministic experiment
// sequence.
func TestRunCtxLiveMatchesRun(t *testing.T) {
	t.Parallel()
	opts := Options{
		Config:     jsas.Config1,
		Params:     perfectParams(),
		Seed:       3,
		Injections: 30,
	}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCtx(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Injections) != len(b.Injections) || a.Successes != b.Successes {
		t.Errorf("RunCtx(background) diverged from Run: %d/%d vs %d/%d",
			len(b.Injections), b.Successes, len(a.Injections), a.Successes)
	}
}
