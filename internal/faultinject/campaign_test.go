package faultinject

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/jsas"
	"repro/internal/testbed"
)

// perfectParams returns ground-truth parameters with FIR = 0, matching the
// paper's observed testbed where all 3,000+ injections recovered.
func perfectParams() jsas.Params {
	p := jsas.DefaultParams()
	p.FIR = 0
	return p
}

func TestSmallCampaignAllRecover(t *testing.T) {
	t.Parallel()
	rep, err := Run(Options{
		Config:     jsas.Config1,
		Params:     perfectParams(),
		Seed:       1,
		Injections: 60,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Injections) != 60 {
		t.Fatalf("injections = %d, want 60", len(rep.Injections))
	}
	if rep.Successes != 60 {
		for _, inj := range rep.Injections {
			if !inj.Recovered {
				t.Logf("failed: %+v", inj)
			}
		}
		t.Errorf("successes = %d, want 60 (FIR=0 ground truth)", rep.Successes)
	}
	if rep.SuccessRate() != 1 {
		t.Errorf("success rate = %v, want 1", rep.SuccessRate())
	}
	// All recoveries observed in a bounded window.
	for _, inj := range rep.Injections {
		if inj.Recovered && inj.RecoveryTime <= 0 {
			t.Errorf("non-positive recovery time: %+v", inj)
		}
	}
	// Coverage bounds present and ordered (higher confidence → lower bound).
	if len(rep.CoverageBounds) != 2 {
		t.Fatalf("bounds = %d, want 2", len(rep.CoverageBounds))
	}
	if rep.CoverageBounds[1].Coverage >= rep.CoverageBounds[0].Coverage {
		t.Error("99.5% bound should be below 95% bound")
	}
}

// TestPaperScaleCampaign reproduces the paper's §5 estimate: 3287
// injections, all successful, giving FIR ≤ 0.1% at 95% confidence and
// ≤ 0.2% at 99.5%.
func TestPaperScaleCampaign(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("3287-injection campaign")
	}
	rep, err := Run(Options{
		Config:     jsas.Config1,
		Params:     perfectParams(),
		Seed:       2004,
		Injections: 3287,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Successes != 3287 {
		t.Fatalf("successes = %d/3287", rep.Successes)
	}
	fir95 := rep.CoverageBounds[0].FIR
	if fir95 > 0.001 {
		t.Errorf("FIR bound at 95%% = %v, want ≤ 0.001", fir95)
	}
	fir995 := rep.CoverageBounds[1].FIR
	if fir995 > 0.002 {
		t.Errorf("FIR bound at 99.5%% = %v, want ≤ 0.002", fir995)
	}
	// The campaign exercised the full taxonomy.
	if len(rep.ByFault) != len(testbed.Faults()) {
		t.Errorf("fault types exercised = %d, want %d", len(rep.ByFault), len(testbed.Faults()))
	}
	// Some multi-node experiments happened.
	multi := 0
	for _, inj := range rep.Injections {
		if inj.MultiNode {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-node injections in a 3287-experiment campaign")
	}
	// Measured HADB process restarts land near the paper's ~40 s.
	hadbRestarts := rep.RecoveryTimes["HADB/process"]
	if len(hadbRestarts) == 0 {
		t.Fatal("no HADB process recovery samples")
	}
	var sum time.Duration
	for _, d := range hadbRestarts {
		sum += d
	}
	mean := sum / time.Duration(len(hadbRestarts))
	if mean < 30*time.Second || mean > 50*time.Second {
		t.Errorf("mean HADB restart = %v, want ≈ 40 s", mean)
	}
}

// TestImperfectRecoveryDetected: with a large ground-truth FIR the
// campaign observes failures and the coverage bound drops accordingly.
func TestImperfectRecoveryDetected(t *testing.T) {
	t.Parallel()
	p := jsas.DefaultParams()
	p.FIR = 0.10 // exaggerated for a small campaign
	rep, err := Run(Options{
		Config:     jsas.Config1,
		Params:     p,
		Seed:       7,
		Injections: 150,
		ASFraction: Fraction(0.01), // focus on HADB where FIR applies
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Successes == len(rep.Injections) {
		t.Error("campaign with FIR=0.10 ground truth saw no failures")
	}
	if rep.CoverageBounds[0].Coverage > 0.99 {
		t.Errorf("coverage bound = %v, should reflect observed failures", rep.CoverageBounds[0].Coverage)
	}
}

func TestCampaignValidation(t *testing.T) {
	t.Parallel()
	if _, err := Run(Options{Config: jsas.Config1, Params: perfectParams(), Injections: 0}); !errors.Is(err, ErrBadCampaign) {
		t.Errorf("0 injections: err = %v", err)
	}
	if _, err := Run(Options{Config: jsas.Config1, Params: perfectParams(), Injections: 1, ASFraction: Fraction(2)}); !errors.Is(err, ErrBadCampaign) {
		t.Errorf("bad fraction: err = %v", err)
	}
	if _, err := Run(Options{Config: jsas.Config1, Params: perfectParams(), Injections: 1, MultiNodeFraction: Fraction(-1)}); !errors.Is(err, ErrBadCampaign) {
		t.Errorf("bad multi fraction: err = %v", err)
	}
	noHADB := jsas.Config{ASInstances: 2}
	if _, err := Run(Options{Config: noHADB, Params: perfectParams(), Injections: 1, ASFraction: Fraction(0.5)}); !errors.Is(err, ErrBadCampaign) {
		t.Errorf("no pairs: err = %v", err)
	}
	if _, err := Run(Options{Config: jsas.Config{}, Params: perfectParams(), Injections: 1}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestCampaignASOnly(t *testing.T) {
	t.Parallel()
	rep, err := Run(Options{
		Config:     jsas.Config{ASInstances: 4},
		Params:     perfectParams(),
		Seed:       3,
		Injections: 20,
		ASFraction: Fraction(1),
		Faults:     []testbed.Fault{testbed.FaultProcessKill},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Successes != 20 {
		t.Errorf("successes = %d, want 20", rep.Successes)
	}
	for _, inj := range rep.Injections {
		if inj.Fault != testbed.FaultProcessKill {
			t.Errorf("unexpected fault %v", inj.Fault)
		}
	}
	// AS process recovery samples measured (restart < 25 s + health check).
	samples := rep.RecoveryTimes["AS/process"]
	if len(samples) != 20 {
		t.Fatalf("AS samples = %d, want 20", len(samples))
	}
	for _, d := range samples {
		if d > 90*time.Second {
			t.Errorf("AS recovery %v exceeds 90 s budget", d)
		}
	}
}

// TestCampaignExplicitZeroASFraction: Fraction(0) means HADB-only, not
// "unset, use the 0.3 default". Before the pointer fields, an explicit 0
// silently became the default and AS targets leaked into the campaign.
func TestCampaignExplicitZeroASFraction(t *testing.T) {
	t.Parallel()
	rep, err := Run(Options{
		Config:     jsas.Config1,
		Params:     perfectParams(),
		Seed:       5,
		Injections: 80,
		ASFraction: Fraction(0),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, inj := range rep.Injections {
		if inj.Target[:5] != "hadb-" {
			t.Fatalf("ASFraction=Fraction(0) campaign targeted %q", inj.Target)
		}
	}
}

// TestCampaignExplicitZeroMultiNode: Fraction(0) disables multi-node
// injections; previously an explicit 0 silently became the 0.1 default.
func TestCampaignExplicitZeroMultiNode(t *testing.T) {
	t.Parallel()
	rep, err := Run(Options{
		Config:            jsas.Config1,
		Params:            perfectParams(),
		Seed:              5,
		Injections:        120,
		ASFraction:        Fraction(0), // all HADB, maximizing multi-node chances
		MultiNodeFraction: Fraction(0),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, inj := range rep.Injections {
		if inj.MultiNode {
			t.Fatalf("injection %d is multi-node despite MultiNodeFraction=Fraction(0)", i)
		}
	}
}

// TestCampaignPartialReportOnError: a campaign that fails mid-run (here a
// recovery timeout far below the true recovery time) returns the completed
// injections rather than discarding them with the error.
func TestCampaignPartialReportOnError(t *testing.T) {
	t.Parallel()
	rep, err := Run(Options{
		Config:          jsas.Config1,
		Params:          perfectParams(),
		Seed:            9,
		Injections:      10,
		RecoveryTimeout: time.Second, // every recovery takes tens of seconds
	})
	if err == nil {
		t.Fatal("expected a settle error with a 1 s recovery timeout")
	}
	if !errors.Is(err, ErrBadCampaign) {
		t.Fatalf("err = %v, want ErrBadCampaign in chain", err)
	}
	if rep == nil {
		t.Fatal("partial report discarded on error")
	}
	if len(rep.Injections) == 0 || len(rep.Injections) >= 10 {
		t.Fatalf("partial injections = %d, want in (0, 10)", len(rep.Injections))
	}
	if len(rep.CoverageBounds) != 2 {
		t.Fatalf("partial report bounds = %d, want 2 (over completed portion)", len(rep.CoverageBounds))
	}
	if rep.Stats.UpTime+rep.Stats.DownTime <= 0 {
		t.Error("partial report missing cluster stats")
	}
}

// TestRecoveryTimeExact pins a known injection's measured recovery time to
// the timing constants: with a fixed 20 s AS restart and a negligible
// health-check interval, RecoveryTime must be 20 s to simulator precision.
// The old waitHealthy polled on a 5 s step, quantizing this up to 25 s.
func TestRecoveryTimeExact(t *testing.T) {
	t.Parallel()
	timing := testbed.DefaultTiming()
	timing.ASRestart = testbed.Fixed(20 * time.Second)
	timing.HealthCheckInterval = time.Nanosecond
	rep, err := Run(Options{
		Config:     jsas.Config{ASInstances: 2},
		Params:     perfectParams(),
		Timing:     &timing,
		Seed:       4,
		Injections: 5,
		ASFraction: Fraction(1),
		Faults:     []testbed.Fault{testbed.FaultProcessKill},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, inj := range rep.Injections {
		// restart (exact 20 s) + detection delay uniform in [0, 1 ns].
		if inj.RecoveryTime < 20*time.Second || inj.RecoveryTime > 20*time.Second+2*time.Nanosecond {
			t.Errorf("injection %d recovery = %v, want 20 s (+≤2 ns detection)", i, inj.RecoveryTime)
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	t.Parallel()
	run := func() *Report {
		rep, err := Run(Options{
			Config: jsas.Config1, Params: perfectParams(), Seed: 11, Injections: 30,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if len(a.Injections) != len(b.Injections) {
		t.Fatal("lengths differ")
	}
	for i := range a.Injections {
		if a.Injections[i] != b.Injections[i] {
			t.Fatalf("injection %d differs: %+v vs %+v", i, a.Injections[i], b.Injections[i])
		}
	}
}

// TestWaitHealthyHugeTimeoutDeepInRun is the regression test for the
// deadline-overflow bug: waitHealthy computed deadline = Now() + timeout,
// which wraps negative when a huge timeout is applied deep into a long
// run, making the Now() >= deadline check spuriously true and failing an
// otherwise-recoverable injection. The deadline must clamp to the far
// horizon instead.
func TestWaitHealthyHugeTimeoutDeepInRun(t *testing.T) {
	t.Parallel()
	cluster, err := testbed.New(testbed.Options{
		Config: jsas.Config{ASInstances: 2},
		Params: perfectParams(),
		Seed:   3,
	})
	if err != nil {
		t.Fatalf("testbed.New: %v", err)
	}
	// Advance deep into virtual time: any timeout above MaxInt64 - Now()
	// overflows the naive deadline sum.
	deep := 250 * 365 * 24 * time.Hour
	if err := cluster.Run(deep); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := cluster.InjectAS(0, testbed.FaultProcessKill); err != nil {
		t.Fatalf("InjectAS: %v", err)
	}
	huge := time.Duration(math.MaxInt64) - time.Hour // Now() + huge wraps
	if deep+huge >= 0 {
		t.Fatalf("test setup: deadline %v does not overflow", deep+huge)
	}
	if err := waitHealthy(cluster, huge); err != nil {
		t.Fatalf("waitHealthy with overflowing timeout: %v (deadline wrapped?)", err)
	}
	if got := cluster.Now(); got <= deep {
		t.Fatalf("Now() = %v, want progress past %v", got, deep)
	}
}
