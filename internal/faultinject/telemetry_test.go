package faultinject

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/jsas"
	"repro/internal/progress"
	"repro/internal/testbed"
)

// TestCampaignTelemetryDoesNotPerturbReport: attaching a progress tracker
// and a windowed time series must not change a single bit of the campaign
// result — telemetry observes the run, it never participates in it.
func TestCampaignTelemetryDoesNotPerturbReport(t *testing.T) {
	t.Parallel()
	base := Options{
		Config:     jsas.Config1,
		Params:     jsas.DefaultParams(),
		Seed:       42,
		Injections: 120,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}

	tracked := base
	tracked.Progress = progress.New(int64(base.Injections), progress.WithStat("recovered"))
	tracked.TimeSeries = testbed.NewTimeSeries(time.Hour, 0)
	got, err := Run(tracked)
	if err != nil {
		t.Fatalf("tracked run: %v", err)
	}

	if !reflect.DeepEqual(plain, got) {
		t.Fatal("telemetry changed the campaign report")
	}
	if n := tracked.Progress.Completed(); n != int64(base.Injections) {
		t.Fatalf("tracker counted %d injections, want %d", n, base.Injections)
	}
	snap := tracked.Progress.Snapshot()
	if snap.StatN != int64(base.Injections) {
		t.Fatalf("tracker observed %d verdicts, want %d", snap.StatN, base.Injections)
	}
	if want := got.SuccessRate(); snap.StatMean != want {
		t.Fatalf("running success rate %v != report %v", snap.StatMean, want)
	}
	if len(tracked.TimeSeries.Windows()) == 0 {
		t.Fatal("time series recorded no windows")
	}
}

// TestCampaignTimeSeriesMatchesStats: the windowed series' aggregate
// up/down time must equal the cluster's own availability accounting.
func TestCampaignTimeSeriesMatchesStats(t *testing.T) {
	t.Parallel()
	ts := testbed.NewTimeSeries(time.Hour, 0)
	rep, err := Run(Options{
		Config:     jsas.Config1,
		Params:     jsas.DefaultParams(),
		Seed:       7,
		Injections: 150,
		TimeSeries: ts,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var up, down time.Duration
	var outages int64
	for _, w := range ts.Windows() {
		up += w.Up
		down += w.Down
		outages += w.Outages
	}
	ev := ts.Evicted()
	up += ev.Up
	down += ev.Down
	outages += ev.Outages
	if up != rep.Stats.UpTime || down != rep.Stats.DownTime {
		t.Fatalf("series up/down %s/%s != stats %s/%s",
			up, down, rep.Stats.UpTime, rep.Stats.DownTime)
	}
	if int(outages) != len(rep.Stats.Outages) {
		t.Fatalf("series outages %d != stats %d", outages, len(rep.Stats.Outages))
	}
}

// TestReplicatedTimeSeriesDeterministicAcrossParallelism: the merged
// windowed series must be byte-identical for every Parallelism setting —
// replicas merge in replica order, never completion order.
func TestReplicatedTimeSeriesDeterministicAcrossParallelism(t *testing.T) {
	t.Parallel()
	render := func(parallelism int) []byte {
		ts := testbed.NewTimeSeries(time.Hour, 0)
		opts := ReplicatedOptions{
			Options: Options{
				Config:     jsas.Config1,
				Params:     jsas.DefaultParams(),
				Seed:       11,
				Injections: 160,
				TimeSeries: ts,
			},
			Replicas:    4,
			Parallelism: parallelism,
		}
		if _, err := RunReplicated(opts); err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		var buf bytes.Buffer
		if err := ts.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	for _, p := range []int{2, 4} {
		if got := render(p); !bytes.Equal(serial, got) {
			t.Fatalf("parallelism %d produced a different time series", p)
		}
	}
}

// TestReplicatedSharedProgressTracker: all replicas feed one tracker, and
// the total completions equal the campaign's injection count at any
// parallelism.
func TestReplicatedSharedProgressTracker(t *testing.T) {
	t.Parallel()
	tr := progress.New(200, progress.WithStat("recovered"), progress.WithUnit("inj"))
	rep, err := RunReplicated(ReplicatedOptions{
		Options: Options{
			Config:     jsas.Config1,
			Params:     jsas.DefaultParams(),
			Seed:       3,
			Injections: 200,
			Progress:   tr,
		},
		Replicas:    4,
		Parallelism: 4,
	})
	if err != nil {
		t.Fatalf("RunReplicated: %v", err)
	}
	if got := tr.Completed(); got != 200 {
		t.Fatalf("tracker counted %d, want 200", got)
	}
	snap := tr.Snapshot()
	if want := rep.SuccessRate(); snap.StatMean != want {
		t.Fatalf("pooled running success rate %v != report %v", snap.StatMean, want)
	}
}
