package faultinject

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/estimate"
	"repro/internal/pool"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// ReplicatedOptions configures a campaign sharded across independent
// replica clusters. The paper's rig ran one testbed serially for weeks;
// replication trades hardware (here: goroutines over fresh simulated
// clusters) for wall-clock time without changing the pooled statistics —
// each injection is an independent Bernoulli trial either way, so
// Equation (1) over the pooled (trials, successes) is the same estimator.
type ReplicatedOptions struct {
	Options

	// Replicas is the number of independent replica clusters the
	// Injections are sharded across (default 1 = the serial campaign).
	// Each replica is a fresh testbed seeded from ReplicaSeed(Seed, r);
	// replica r runs Injections/Replicas experiments, with the remainder
	// spread over the lowest-indexed replicas.
	Replicas int

	// Parallelism caps how many replicas run concurrently (0 = one worker
	// per replica). The merged report is byte-identical for every value:
	// results are merged by replica index, never by completion order.
	Parallelism int
}

// ReplicaError reports one replica's failure within a replicated
// campaign. RunReplicated keeps the other replicas' results; errors from
// multiple replicas are joined in replica order.
type ReplicaError struct {
	// Replica is the failed replica's index.
	Replica int
	// Seed is the derived seed the replica ran with (reproduce the
	// failure serially with Options.Seed = Seed).
	Seed int64
	// Completed is how many injections the replica finished before
	// failing; those injections are still pooled into the merged report.
	Completed int
	// Err is the underlying campaign error.
	Err error
}

func (e *ReplicaError) Error() string {
	return fmt.Sprintf("replica %d (seed %d) failed after %d injections: %v",
		e.Replica, e.Seed, e.Completed, e.Err)
}

func (e *ReplicaError) Unwrap() error { return e.Err }

// ReplicaSeed derives the RNG seed for replica r of a campaign with the
// given base seed. Replica 0 uses the base seed unchanged, so a
// single-replica campaign reproduces the serial campaign bit-for-bit;
// later replicas mix the index through a SplitMix64 finalizer so replicas
// draw effectively independent streams even for adjacent base seeds.
func ReplicaSeed(seed int64, r int) int64 {
	if r == 0 {
		return seed
	}
	x := uint64(seed) + uint64(r)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// RunReplicated executes a campaign sharded across opts.Replicas
// independent clusters and merges the per-replica reports, in replica
// order, into one pooled Report. With Replicas <= 1 it is exactly Run.
//
// Determinism: the merged Report (and the merged trace stream, when
// opts.Trace is set — per-replica spans are imported in replica order,
// tagged with trace.AttrReplica) depends only on (Options, Replicas),
// never on Parallelism or goroutine scheduling.
//
// A replica that fails mid-campaign contributes its completed injections
// to the pool and surfaces as a *ReplicaError (multiple failures are
// errors.Join-ed in replica order); the partial merged Report is returned
// alongside the error. It is RunReplicatedCtx with a background context.
func RunReplicated(opts ReplicatedOptions) (*Report, error) {
	return RunReplicatedCtx(context.Background(), opts)
}

// RunReplicatedCtx is RunReplicated with cancellation. A canceled ctx
// stops dispatching replicas and interrupts running ones between
// injections; every completed injection — from finished and interrupted
// replicas alike — is still pooled into the merged Report, with the
// interrupted replicas' cancellations surfacing as *ReplicaError values
// wrapping ctx.Err().
func RunReplicatedCtx(ctx context.Context, opts ReplicatedOptions) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	replicas := opts.Replicas
	if replicas == 0 {
		replicas = 1
	}
	if replicas < 0 {
		return nil, fmt.Errorf("replicas = %d: %w", opts.Replicas, ErrBadCampaign)
	}
	if replicas == 1 {
		return RunCtx(ctx, opts.Options)
	}
	if opts.Injections <= 0 {
		return nil, fmt.Errorf("injections = %d: %w", opts.Injections, ErrBadCampaign)
	}
	if replicas > opts.Injections {
		// No empty replicas: a cluster with nothing to inject is pure cost.
		replicas = opts.Injections
	}

	share := opts.Injections / replicas
	extra := opts.Injections % replicas
	reports := make([]*Report, replicas)
	errs := make([]error, replicas)
	recs := make([]*trace.Recorder, replicas)
	series := make([]*testbed.TimeSeries, replicas)
	// ContinueOnError: a stuck replica must not discard the others' work.
	poolErr := pool.Run(ctx, replicas, pool.Options{Workers: opts.Parallelism, ContinueOnError: true},
		func(_, i int) error {
			ropts := opts.Options
			ropts.Injections = share
			if i < extra {
				ropts.Injections++
			}
			ropts.Seed = ReplicaSeed(opts.Seed, i)
			if opts.Trace != nil {
				recs[i] = trace.New(trace.Config{Capacity: trace.Unbounded})
				ropts.Trace = recs[i]
			}
			if opts.TimeSeries != nil {
				// Each replica records privately (the recorder is not
				// concurrency-safe); the series merge below happens in
				// replica order, like the trace import, so the merged
				// series never depends on Parallelism.
				series[i] = testbed.NewTimeSeries(opts.TimeSeries.Width(), opts.TimeSeries.Cap())
				ropts.TimeSeries = series[i]
			}
			rep, err := RunCtx(ctx, ropts)
			reports[i] = rep
			if err != nil {
				completed := 0
				if rep != nil {
					completed = len(rep.Injections)
				}
				obsReplicaFailures.Inc()
				errs[i] = &ReplicaError{Replica: i, Seed: ropts.Seed, Completed: completed, Err: err}
			}
			return errs[i]
		})

	if opts.Trace != nil {
		for i, rc := range recs {
			if rc != nil {
				opts.Trace.Import(trace.TagReplica(rc.Spans(), i))
			}
		}
	}
	if opts.TimeSeries != nil {
		for _, ts := range series {
			if ts != nil {
				opts.TimeSeries.Merge(ts)
			}
		}
	}
	merged, err := mergeReports(opts.Options, replicas, reports)
	if err != nil {
		return merged, err
	}
	var joined []error
	for _, e := range errs {
		if e != nil {
			joined = append(joined, e)
			if e == poolErr {
				// The pool reports the lowest-indexed replica error; it is
				// already in the per-replica list.
				poolErr = nil
			}
		}
	}
	if poolErr != nil {
		// Cancellation with no per-replica error (replicas skipped before
		// starting) must still surface, or a canceled campaign would read
		// as complete.
		joined = append(joined, fmt.Errorf("faultinject: campaign canceled: %w", poolErr))
	}
	return merged, errors.Join(joined...)
}

// mergeReports pools per-replica reports, in slice (= replica) order, into
// one Report: injections concatenate, success and per-fault counts sum,
// recovery-time samples append per key, cluster stats merge, and the
// Equation (1) bounds are recomputed over the pooled counts. nil entries
// (replicas that produced nothing) are skipped.
func mergeReports(opts Options, replicas int, parts []*Report) (*Report, error) {
	out := &Report{
		Config:        opts.Config,
		Replicas:      replicas,
		ByFault:       make(map[testbed.Fault]int),
		RecoveryTimes: make(map[string][]time.Duration),
	}
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Injections = append(out.Injections, p.Injections...)
		out.Successes += p.Successes
		for f, n := range p.ByFault {
			out.ByFault[f] += n
		}
		for k, v := range p.RecoveryTimes {
			out.RecoveryTimes[k] = append(out.RecoveryTimes[k], v...)
		}
		out.Stats = out.Stats.Merge(p.Stats)
	}
	// Rederive the per-class decomposition from the pooled records — a
	// sum of per-replica maps and a recompute agree exactly, and the
	// recompute keeps one source of truth.
	out.computeByClass()
	confidences := opts.Confidences
	if len(confidences) == 0 {
		confidences = []float64{0.95, 0.995}
	}
	if len(out.Injections) > 0 {
		for _, conf := range confidences {
			b, err := estimate.CoverageLowerBound(len(out.Injections), out.Successes, conf)
			if err != nil {
				return out, fmt.Errorf("faultinject: %w", err)
			}
			out.CoverageBounds = append(out.CoverageBounds, b)
		}
	}
	return out, nil
}
