package faultinject

// This file holds the correlated-campaign support: domain-level
// common-cause bursts and network partitions layered on the independent
// fault taxonomy, with the report decomposed by cause class. The
// measured common-cause fraction (beta) is the bridge to the analytic
// side — it parameterizes the beta-factor term of the hierarchical
// model the same way Table 3 parameterizes the independent one.

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/testbed"
)

// Correlated-injection metrics, reported to the default obs registry.
var (
	obsDomainInjections    = obs.C("faultinject_domain_injections_total", "domain-level common-cause injections performed")
	obsPartitionInjections = obs.C("faultinject_partition_injections_total", "network-partition injections performed")
	// obsInjectionsByClass is resolved per class at init — the increment
	// runs once per injection in the campaign hot loop.
	obsInjectionsByClass [int(testbed.CausePartition) + 1]*obs.Counter
)

func init() {
	for cl := testbed.CauseIndependent; cl <= testbed.CausePartition; cl++ {
		obsInjectionsByClass[cl] = obs.C("faultinject_injections_by_class_total",
			"fault injections by cause class", fmt.Sprintf("class=%q", cl))
	}
}

// commonCauseFraction resolves the common-cause probability (nil = 0).
func (o Options) commonCauseFraction() float64 {
	if o.CommonCauseFraction == nil {
		return 0
	}
	return *o.CommonCauseFraction
}

// partitionFraction resolves the partition probability (nil = 0).
func (o Options) partitionFraction() float64 {
	if o.PartitionFraction == nil {
		return 0
	}
	return *o.PartitionFraction
}

// ClassStats decomposes the campaign along one cause class.
type ClassStats struct {
	// Injections and Successes count experiments of this class and those
	// that recovered without a system outage — the class's coverage.
	Injections int
	Successes  int
	// ComponentFailures counts the component failures the class's
	// injections induced (a domain burst fails every member at once; a
	// partition fails none — instances stay alive, just unreachable).
	ComponentFailures int
	// Downtime is the system downtime from outages attributed to this
	// class.
	Downtime time.Duration
}

// computeByClass (re)derives the per-class decomposition from the
// injection records and the cluster stats; called when a report is
// finalized and again after a replicated merge, so the decomposition is
// always consistent with the pooled records.
func (r *Report) computeByClass() {
	r.ByClass = make(map[testbed.Cause]ClassStats)
	for _, inj := range r.Injections {
		cs := r.ByClass[inj.Class]
		cs.Injections++
		if inj.Recovered {
			cs.Successes++
		}
		cs.ComponentFailures += inj.ComponentsFailed
		r.ByClass[inj.Class] = cs
	}
	down := r.Stats.DowntimeByClass()
	for cl := range down {
		if down[cl] > 0 {
			cs := r.ByClass[testbed.Cause(cl)]
			cs.Downtime = down[cl]
			r.ByClass[testbed.Cause(cl)] = cs
		}
	}
}

// MeasuredCommonCauseFraction returns the measured beta-factor: the
// fraction of induced component failures that arrived via a common
// cause. Feeding it to jsas.Params.Beta (or a spec common_cause block)
// parameterizes the analytic beta-factor model from this campaign.
func (r *Report) MeasuredCommonCauseFraction() float64 {
	total, cc := 0, 0
	for _, inj := range r.Injections {
		total += inj.ComponentsFailed
		if inj.Class == testbed.CauseCommonCause {
			cc += inj.ComponentsFailed
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cc) / float64(total)
}
