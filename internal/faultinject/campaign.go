// Package faultinject runs fault-injection campaigns against the
// simulated testbed, reproducing the paper's §3 methodology: thousands of
// injections across the fault taxonomy (process kills, fast-fails, network
// cuts, power pulls) on AS instances and HADB nodes, single- and
// multi-node (never both nodes of a pair), each followed by a recovery
// verdict. The campaign report feeds the Equation (1) coverage estimator.
//
// Run drives one cluster serially, as the paper's rig did; RunReplicated
// shards a campaign across independent replica clusters and pools the
// results (replicated.go).
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/estimate"
	"repro/internal/jsas"
	"repro/internal/obs"
	"repro/internal/progress"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// ErrBadCampaign is reported for invalid campaign options.
var ErrBadCampaign = errors.New("faultinject: invalid campaign")

// Campaign metrics, reported to the default obs registry.
var (
	obsInjections      = obs.C("faultinject_injections_total", "fault injections performed")
	obsReplicaFailures = obs.C("faultinject_replica_failures_total", "campaign replicas that failed mid-run")
)

// Fraction returns a pointer to v, for the Options fraction fields. The
// fields are pointers so that an explicit 0 (an HADB-only campaign, or a
// campaign with multi-node injections disabled) is distinguishable from
// "unset, use the default".
func Fraction(v float64) *float64 { return &v }

// Default fraction values used when the corresponding Options field is nil.
const (
	// DefaultASFraction is the default probability an injection targets an
	// AS instance (the automated campaign focused on HADB).
	DefaultASFraction = 0.3
	// DefaultMultiNodeFraction is the default probability an HADB
	// injection simultaneously hits a second node in a different pair.
	DefaultMultiNodeFraction = 0.1
)

// Options configures a campaign.
type Options struct {
	Config jsas.Config
	Params jsas.Params
	// Timing overrides the testbed's measured-truth behavior (nil =
	// defaults).
	Timing *testbed.Timing
	Seed   int64
	// Injections is the number of injection experiments (paper: 3287).
	Injections int
	// Faults restricts the taxonomy (empty = all fault types).
	Faults []testbed.Fault
	// ASFraction is the probability an injection targets an AS instance
	// rather than an HADB node. nil means DefaultASFraction (0.3); set an
	// explicit value with Fraction — Fraction(0) requests an HADB-only
	// campaign, Fraction(1) an AS-only one.
	ASFraction *float64
	// MultiNodeFraction is the probability an HADB injection
	// simultaneously hits a second node in a *different* pair (paper:
	// "multi-node (not in a pair) failures were induced"). nil means
	// DefaultMultiNodeFraction (0.1); Fraction(0) disables multi-node
	// injections entirely.
	MultiNodeFraction *float64
	// Domains declares the fault-domain tree (site → power domain/rack →
	// members) for common-cause injection; required when
	// CommonCauseFraction > 0.
	Domains []testbed.Domain
	// CommonCauseFraction is the probability an injection is a
	// domain-level common-cause burst: a random declared domain fails
	// atomically, every member with the same fault. nil (or Fraction(0))
	// keeps the campaign purely independent — and RNG-stream identical to
	// a pre-fault-domain campaign.
	CommonCauseFraction *float64
	// PartitionFraction is the probability an injection is a network
	// partition isolating a random nonempty subset of the AS instances
	// from the load balancer (LB split-brain; isolating all of them
	// models a switch loss). nil means 0. CommonCauseFraction +
	// PartitionFraction must not exceed 1.
	PartitionFraction *float64
	// RecoveryTimeout bounds how long the campaign waits for full cluster
	// health after an injection before declaring the recovery failed.
	// Default 4 h (covers HW physical repair).
	RecoveryTimeout time.Duration
	// Confidences for the Equation (1) coverage bounds (default 0.95 and
	// 0.995).
	Confidences []float64
	// Trace, if set, records the campaign as a span tree (sim-time): one
	// campaign root, one span per injection, and — via the testbed tracer —
	// component failure / recovery-stage / outage spans beneath each.
	Trace *trace.Recorder
	// Progress, if set, receives one Done() per completed injection plus
	// an Observe(1|0) per recovery verdict, so live status lines can show
	// the running success rate (the Eq. (1) quantity) with a CI half-width.
	// The tracker is atomic: replicated campaigns share one across
	// replicas. nil (the default) costs one predictable branch per
	// injection.
	Progress *progress.Tracker
	// TimeSeries, if set, consumes the cluster event stream into a
	// windowed sim-time availability series (finished with the campaign
	// horizon before RunCtx returns). Replicated campaigns give each
	// replica a private series and merge them in replica order.
	TimeSeries *testbed.TimeSeries
}

// asFraction resolves the AS-target probability.
func (o Options) asFraction() float64 {
	if o.ASFraction == nil {
		return DefaultASFraction
	}
	return *o.ASFraction
}

// multiNodeFraction resolves the multi-node probability.
func (o Options) multiNodeFraction() float64 {
	if o.MultiNodeFraction == nil {
		return DefaultMultiNodeFraction
	}
	return *o.MultiNodeFraction
}

// Injection records one experiment.
type Injection struct {
	At        time.Duration
	Target    string
	Fault     testbed.Fault
	MultiNode bool
	// Class is the cause class: independent (zero), common-cause (a
	// domain burst), or partition.
	Class testbed.Cause
	// Domain names the fault domain of a common-cause burst.
	Domain string
	// ComponentsFailed counts the component failures this injection
	// induced (1 or 2 independent, domain size for a burst, 0 for a
	// partition — isolated instances stay alive).
	ComponentsFailed int
	// Recovered reports whether the cluster returned to full health
	// within the timeout with no system-level outage.
	Recovered bool
	// RecoveryTime is the time from injection to full health.
	RecoveryTime time.Duration
}

// Report summarizes a campaign.
type Report struct {
	Config     jsas.Config
	Injections []Injection
	// Replicas is the number of independent replica clusters pooled into
	// this report (1 for a serial campaign).
	Replicas int
	// Successes counts recoveries with no system outage.
	Successes int
	// ByFault counts injections per fault type.
	ByFault map[testbed.Fault]int
	// ByClass decomposes injections, successes, component failures, and
	// downtime by cause class (independent vs. common-cause vs.
	// partition).
	ByClass map[testbed.Cause]ClassStats
	// CoverageBounds holds the Equation (1) bounds at each confidence,
	// computed over the pooled injection counts.
	CoverageBounds []estimate.CoverageBound
	// RecoveryTimes collects per-(component/fault-class) observed
	// recovery durations for the §5 parameter estimates.
	RecoveryTimes map[string][]time.Duration
	// Stats is the cluster's own availability accounting for the campaign
	// run — the ground truth the trace-based decomposition is checked
	// against. For a replicated report it is the per-replica Stats merged
	// with testbed.Stats.Merge.
	Stats testbed.Stats
}

// SuccessRate returns the fraction of injections that recovered.
func (r *Report) SuccessRate() float64 {
	if len(r.Injections) == 0 {
		return 0
	}
	return float64(r.Successes) / float64(len(r.Injections))
}

// Run executes a campaign on a fresh cluster. Injections are performed
// sequentially: the campaign waits for full health (or the timeout)
// between experiments, as the paper's rigs did.
//
// If the cluster fails to settle (or an injection cannot be placed)
// mid-campaign, Run returns the partial Report — every completed
// injection, with stats, recovery-time samples, and Equation (1) bounds
// computed over the completed portion — alongside the error, so a long
// campaign never loses finished work to one stuck recovery. It is RunCtx
// with a background context.
func Run(opts Options) (*Report, error) {
	return RunCtx(context.Background(), opts)
}

// RunCtx is Run with cancellation: the context is checked between
// injections, so a canceled campaign stops within one experiment and
// returns the partial Report (completed injections, stats, and bounds
// over the completed portion) alongside an error wrapping ctx.Err() —
// the same partial-work contract as a mid-campaign failure.
func RunCtx(ctx context.Context, opts Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Injections <= 0 {
		return nil, fmt.Errorf("injections = %d: %w", opts.Injections, ErrBadCampaign)
	}
	asFraction := opts.asFraction()
	if asFraction < 0 || asFraction > 1 {
		return nil, fmt.Errorf("ASFraction = %g: %w", asFraction, ErrBadCampaign)
	}
	multiNodeFraction := opts.multiNodeFraction()
	if multiNodeFraction < 0 || multiNodeFraction > 1 {
		return nil, fmt.Errorf("MultiNodeFraction = %g: %w", multiNodeFraction, ErrBadCampaign)
	}
	ccFraction := opts.commonCauseFraction()
	if ccFraction < 0 || ccFraction > 1 {
		return nil, fmt.Errorf("CommonCauseFraction = %g: %w", ccFraction, ErrBadCampaign)
	}
	partitionFraction := opts.partitionFraction()
	if partitionFraction < 0 || partitionFraction > 1 {
		return nil, fmt.Errorf("PartitionFraction = %g: %w", partitionFraction, ErrBadCampaign)
	}
	correlated := ccFraction + partitionFraction
	if correlated > 1 {
		return nil, fmt.Errorf("CommonCauseFraction+PartitionFraction = %g > 1: %w", correlated, ErrBadCampaign)
	}
	if ccFraction > 0 && len(opts.Domains) == 0 {
		return nil, fmt.Errorf("CommonCauseFraction = %g with no Domains: %w", ccFraction, ErrBadCampaign)
	}
	if partitionFraction > 0 && opts.Config.ASInstances < 2 {
		return nil, fmt.Errorf("PartitionFraction = %g needs at least 2 AS instances: %w", partitionFraction, ErrBadCampaign)
	}
	if len(opts.Domains) > 0 {
		if err := testbed.ValidateDomains(opts.Domains, opts.Config.ASInstances, opts.Config.HADBPairs); err != nil {
			return nil, fmt.Errorf("domains: %v: %w", err, ErrBadCampaign)
		}
	}
	if opts.RecoveryTimeout <= 0 {
		opts.RecoveryTimeout = 4 * time.Hour
	}
	if len(opts.Faults) == 0 {
		opts.Faults = testbed.Faults()
	}
	// Reject an unknown Fault value here, not after thousands of healthy
	// injections: Fault.Kind is the taxonomy's source of truth, and a
	// value outside it is a configuration error, not a mid-campaign one.
	for _, f := range opts.Faults {
		if _, err := f.Kind(); err != nil {
			return nil, fmt.Errorf("faults: %v: %w", err, ErrBadCampaign)
		}
	}
	if len(opts.Confidences) == 0 {
		opts.Confidences = []float64{0.95, 0.995}
	}
	if opts.Config.HADBPairs == 0 && asFraction < 1 {
		return nil, fmt.Errorf("campaign needs HADB pairs or ASFraction=1: %w", ErrBadCampaign)
	}
	var (
		tracer   *testbed.Tracer
		root     *trace.Active
		observer testbed.Observer
	)
	if opts.Trace != nil {
		root = opts.Trace.StartAt(trace.SpanCampaign, 0, nil,
			trace.String(trace.AttrTrack, "campaign"),
			trace.Int("injections", int64(opts.Injections)),
			trace.Int("seed", opts.Seed))
		tracer = testbed.NewTracer(opts.Trace, root)
		observer = tracer.Observe
	}
	if opts.TimeSeries != nil {
		observer = testbed.MultiObserver(observer, opts.TimeSeries.Observe)
	}
	cluster, err := testbed.New(testbed.Options{
		Config:   opts.Config,
		Params:   opts.Params,
		Timing:   opts.Timing,
		Seed:     opts.Seed,
		Domains:  opts.Domains,
		Observer: observer,
		// Organic failures off: every failure is an injection.
	})
	if err != nil {
		return nil, fmt.Errorf("faultinject: %w", err)
	}
	rng := cluster.Sim().RNG()
	// Scratch for partition target selection (partial Fisher–Yates),
	// allocated once for the whole campaign.
	var partitionIDs []int
	if partitionFraction > 0 {
		partitionIDs = make([]int, opts.Config.ASInstances)
	}
	rep := &Report{
		Config:        opts.Config,
		Replicas:      1,
		ByFault:       make(map[testbed.Fault]int),
		RecoveryTimes: make(map[string][]time.Duration),
	}
	var runErr error
	for i := 0; i < opts.Injections; i++ {
		if err := ctx.Err(); err != nil {
			runErr = fmt.Errorf("faultinject: campaign canceled before injection %d: %w", i, err)
			break
		}
		if err := waitHealthy(cluster, opts.RecoveryTimeout); err != nil {
			runErr = fmt.Errorf("faultinject: cluster did not settle before injection %d: %w", i, err)
			break
		}
		// The class selector draw happens only when correlated injections
		// are requested, so a purely independent campaign consumes the
		// exact RNG stream it always has — same-seed reports stay
		// byte-identical to pre-fault-domain runs.
		class := testbed.CauseIndependent
		if correlated > 0 {
			switch u := rng.Float64(); {
			case u < ccFraction:
				class = testbed.CauseCommonCause
			case u < correlated:
				class = testbed.CausePartition
			}
		}
		// A partition is the network-cut fault by definition; the
		// taxonomy draw is reserved for injections that fail components.
		fault := testbed.FaultNetworkCut
		if class != testbed.CausePartition {
			fault = opts.Faults[rng.Intn(len(opts.Faults))]
		}
		inj := Injection{At: cluster.Now(), Fault: fault, Class: class}
		kind, err := fault.Kind()
		if err != nil {
			runErr = fmt.Errorf("faultinject: injection %d: %w", i, err)
			break
		}
		// Count closed-or-open outages before injecting: an injection that
		// opens an outage must not count it as pre-existing. OutageCount
		// avoids Stats, which copies the whole outage and recovery history
		// and would make the campaign quadratic in its own length.
		outagesBefore := cluster.OutageCount()
		injSpan := opts.Trace.StartAt(trace.SpanInjection, inj.At, root,
			trace.String(trace.AttrTrack, "campaign"),
			trace.Int(trace.AttrIndex, int64(i)),
			trace.String(trace.AttrFault, fault.String()),
			trace.String(trace.AttrKind, kind.String()))
		if tracer != nil {
			tracer.SetParent(injSpan)
		}
		var placeErr error
		switch class {
		case testbed.CauseCommonCause:
			d := opts.Domains[rng.Intn(len(opts.Domains))]
			inj.Domain = d.Name
			inj.Target = "domain:" + d.Name
			injSpan.Attr(
				trace.String(trace.AttrClass, class.String()),
				trace.String(trace.AttrDomain, d.Name))
			if n, err := cluster.InjectDomain(d.Name, fault); err != nil {
				placeErr = err
			} else {
				inj.ComponentsFailed = n
				obsDomainInjections.Inc()
			}
		case testbed.CausePartition:
			// Isolate a random nonempty subset of the instances via a
			// partial Fisher–Yates shuffle of the scratch index slice.
			// k = n cuts the whole tier off from the load balancer (switch
			// loss) — the system is down until the partition heals even
			// though every instance is alive.
			n := opts.Config.ASInstances
			k := 1 + rng.Intn(n)
			for j := range partitionIDs {
				partitionIDs[j] = j
			}
			for j := 0; j < k; j++ {
				swap := j + rng.Intn(n-j)
				partitionIDs[j], partitionIDs[swap] = partitionIDs[swap], partitionIDs[j]
			}
			inj.Target = fmt.Sprintf("network:%d", k)
			injSpan.Attr(trace.String(trace.AttrClass, class.String()))
			if err := cluster.InjectPartition(partitionIDs[:k]); err != nil {
				placeErr = err
			} else {
				obsPartitionInjections.Inc()
			}
		default:
			if rng.Float64() < asFraction {
				id := rng.Intn(opts.Config.ASInstances)
				inj.Target = fmt.Sprintf("as-%d", id)
				injSpan.Attr(trace.String(trace.AttrComponent, testbed.ComponentAS.String()))
				if err := cluster.InjectAS(id, fault); err != nil {
					placeErr = err
				} else {
					inj.ComponentsFailed = 1
				}
			} else {
				pair := rng.Intn(opts.Config.HADBPairs)
				slot := rng.Intn(2)
				inj.Target = fmt.Sprintf("hadb-%d/%d", pair, slot)
				injSpan.Attr(trace.String(trace.AttrComponent, testbed.ComponentHADB.String()))
				if err := cluster.InjectHADB(pair, slot, fault); err != nil {
					placeErr = err
					break
				}
				inj.ComponentsFailed = 1
				// Multi-node: a simultaneous second injection in another pair.
				if opts.Config.HADBPairs > 1 && rng.Float64() < multiNodeFraction {
					other := (pair + 1 + rng.Intn(opts.Config.HADBPairs-1)) % opts.Config.HADBPairs
					if err := cluster.InjectHADB(other, rng.Intn(2), fault); err != nil {
						placeErr = fmt.Errorf("multi-node: %w", err)
						break
					}
					inj.MultiNode = true
					inj.ComponentsFailed = 2
				}
			}
		}
		if placeErr != nil {
			injSpan.EndAt(cluster.Now())
			runErr = fmt.Errorf("faultinject: injection %d: %w", i, placeErr)
			break
		}
		healthyErr := waitHealthy(cluster, opts.RecoveryTimeout)
		inj.RecoveryTime = cluster.Now() - inj.At
		inj.Recovered = healthyErr == nil && cluster.OutageCount() == outagesBefore
		if inj.Recovered {
			rep.Successes++
		}
		injSpan.Attr(
			trace.String(trace.AttrTarget, inj.Target),
			trace.Bool(trace.AttrMultiNode, inj.MultiNode),
			trace.Bool(trace.AttrRecovered, inj.Recovered))
		if tracer != nil {
			tracer.SetParent(root)
		}
		injSpan.EndAt(cluster.Now())
		rep.ByFault[fault]++
		rep.Injections = append(rep.Injections, inj)
		obsInjections.Inc()
		obsInjectionsByClass[class].Inc()
		if opts.Progress != nil {
			opts.Progress.Done()
			if inj.Recovered {
				opts.Progress.Observe(1)
			} else {
				opts.Progress.Observe(0)
			}
		}
	}
	if tracer != nil {
		tracer.Close(cluster.Now())
		root.EndAt(cluster.Now())
	}
	if opts.TimeSeries != nil {
		opts.TimeSeries.FinishAt(cluster.Now())
	}
	rep.Stats = cluster.Stats()
	cluster.Close()
	rep.computeByClass()
	// Collect the recovery-time samples for parameter estimation.
	for _, rec := range rep.Stats.Recoveries {
		if !rec.Success {
			continue
		}
		key := fmt.Sprintf("%s/%s", rec.Component, rec.Kind)
		rep.RecoveryTimes[key] = append(rep.RecoveryTimes[key], rec.Duration)
	}
	if len(rep.Injections) > 0 {
		for _, conf := range opts.Confidences {
			b, err := estimate.CoverageLowerBound(len(rep.Injections), rep.Successes, conf)
			if err != nil {
				return rep, fmt.Errorf("faultinject: %w", err)
			}
			rep.CoverageBounds = append(rep.CoverageBounds, b)
		}
	}
	return rep, runErr
}

// waitHealthy advances the simulation event-by-event until every component
// is serving, or the timeout elapses. Advancing on event boundaries (not a
// fixed polling step) makes the measured recovery times exact to the
// simulator's clock — a fixed step would quantize every
// Injection.RecoveryTime up to one step above truth, biasing the §5
// recovery-time estimates.
func waitHealthy(c *testbed.Cluster, timeout time.Duration) error {
	deadline := c.Now() + timeout
	if deadline < c.Now() {
		// Overflow: a huge timeout deep into a long run would wrap the
		// deadline negative, making c.Now() >= deadline immediately true
		// and failing the campaign spuriously. Clamp to the far horizon,
		// as des.Sim.Schedule does for overflowing delays.
		deadline = time.Duration(math.MaxInt64)
	}
	for {
		if c.Healthy() {
			return nil
		}
		if c.Now() >= deadline {
			return fmt.Errorf("not healthy after %v: %w", timeout, ErrBadCampaign)
		}
		next, ok := c.Sim().NextEventAt()
		if !ok || next > deadline {
			// Health only changes on events; none can arrive in time.
			// Advance to the deadline (charging the unhealthy wait to the
			// availability accounting) and report the timeout.
			if err := c.Run(deadline); err != nil {
				return err
			}
			if c.Healthy() {
				return nil
			}
			return fmt.Errorf("not healthy after %v: %w", timeout, ErrBadCampaign)
		}
		if err := c.Run(next); err != nil {
			return err
		}
	}
}
