// Package faultinject runs fault-injection campaigns against the
// simulated testbed, reproducing the paper's §3 methodology: thousands of
// injections across the fault taxonomy (process kills, fast-fails, network
// cuts, power pulls) on AS instances and HADB nodes, single- and
// multi-node (never both nodes of a pair), each followed by a recovery
// verdict. The campaign report feeds the Equation (1) coverage estimator.
package faultinject

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/estimate"
	"repro/internal/jsas"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// ErrBadCampaign is reported for invalid campaign options.
var ErrBadCampaign = errors.New("faultinject: invalid campaign")

// Options configures a campaign.
type Options struct {
	Config jsas.Config
	Params jsas.Params
	// Timing overrides the testbed's measured-truth behavior (nil =
	// defaults).
	Timing *testbed.Timing
	Seed   int64
	// Injections is the number of injection experiments (paper: 3287).
	Injections int
	// Faults restricts the taxonomy (empty = all fault types).
	Faults []testbed.Fault
	// ASFraction is the probability an injection targets an AS instance
	// rather than an HADB node (default 0.3 — the automated campaign
	// focused on HADB).
	ASFraction float64
	// MultiNodeFraction is the probability an HADB injection
	// simultaneously hits a second node in a *different* pair (paper:
	// "multi-node (not in a pair) failures were induced"). Default 0.1.
	MultiNodeFraction float64
	// RecoveryTimeout bounds how long the campaign waits for full cluster
	// health after an injection before declaring the recovery failed.
	// Default 4 h (covers HW physical repair).
	RecoveryTimeout time.Duration
	// Confidences for the Equation (1) coverage bounds (default 0.95 and
	// 0.995).
	Confidences []float64
	// Trace, if set, records the campaign as a span tree (sim-time): one
	// campaign root, one span per injection, and — via the testbed tracer —
	// component failure / recovery-stage / outage spans beneath each.
	Trace *trace.Recorder
}

// Injection records one experiment.
type Injection struct {
	At        time.Duration
	Target    string
	Fault     testbed.Fault
	MultiNode bool
	// Recovered reports whether the cluster returned to full health
	// within the timeout with no system-level outage.
	Recovered bool
	// RecoveryTime is the time from injection to full health.
	RecoveryTime time.Duration
}

// Report summarizes a campaign.
type Report struct {
	Config     jsas.Config
	Injections []Injection
	// Successes counts recoveries with no system outage.
	Successes int
	// ByFault counts injections per fault type.
	ByFault map[testbed.Fault]int
	// CoverageBounds holds the Equation (1) bounds at each confidence.
	CoverageBounds []estimate.CoverageBound
	// RecoveryTimes collects per-(component/fault-class) observed
	// recovery durations for the §5 parameter estimates.
	RecoveryTimes map[string][]time.Duration
	// Stats is the cluster's own availability accounting for the campaign
	// run — the ground truth the trace-based decomposition is checked
	// against.
	Stats testbed.Stats
}

// SuccessRate returns the fraction of injections that recovered.
func (r *Report) SuccessRate() float64 {
	if len(r.Injections) == 0 {
		return 0
	}
	return float64(r.Successes) / float64(len(r.Injections))
}

// Run executes a campaign on a fresh cluster. Injections are performed
// sequentially: the campaign waits for full health (or the timeout)
// between experiments, as the paper's rigs did.
func Run(opts Options) (*Report, error) {
	if opts.Injections <= 0 {
		return nil, fmt.Errorf("injections = %d: %w", opts.Injections, ErrBadCampaign)
	}
	if opts.ASFraction < 0 || opts.ASFraction > 1 {
		return nil, fmt.Errorf("ASFraction = %g: %w", opts.ASFraction, ErrBadCampaign)
	}
	if opts.ASFraction == 0 {
		opts.ASFraction = 0.3
	}
	if opts.MultiNodeFraction < 0 || opts.MultiNodeFraction > 1 {
		return nil, fmt.Errorf("MultiNodeFraction = %g: %w", opts.MultiNodeFraction, ErrBadCampaign)
	}
	if opts.MultiNodeFraction == 0 {
		opts.MultiNodeFraction = 0.1
	}
	if opts.RecoveryTimeout <= 0 {
		opts.RecoveryTimeout = 4 * time.Hour
	}
	if len(opts.Faults) == 0 {
		opts.Faults = testbed.Faults()
	}
	if len(opts.Confidences) == 0 {
		opts.Confidences = []float64{0.95, 0.995}
	}
	if opts.Config.HADBPairs == 0 && opts.ASFraction < 1 {
		return nil, fmt.Errorf("campaign needs HADB pairs or ASFraction=1: %w", ErrBadCampaign)
	}
	var (
		tracer   *testbed.Tracer
		root     *trace.Active
		observer testbed.Observer
	)
	if opts.Trace != nil {
		root = opts.Trace.StartAt(trace.SpanCampaign, 0, nil,
			trace.String(trace.AttrTrack, "campaign"),
			trace.Int("injections", int64(opts.Injections)),
			trace.Int("seed", opts.Seed))
		tracer = testbed.NewTracer(opts.Trace, root)
		observer = tracer.Observe
	}
	cluster, err := testbed.New(testbed.Options{
		Config:   opts.Config,
		Params:   opts.Params,
		Timing:   opts.Timing,
		Seed:     opts.Seed,
		Observer: observer,
		// Organic failures off: every failure is an injection.
	})
	if err != nil {
		return nil, fmt.Errorf("faultinject: %w", err)
	}
	rng := cluster.Sim().RNG()
	rep := &Report{
		Config:        opts.Config,
		ByFault:       make(map[testbed.Fault]int),
		RecoveryTimes: make(map[string][]time.Duration),
	}
	for i := 0; i < opts.Injections; i++ {
		if err := waitHealthy(cluster, opts.RecoveryTimeout); err != nil {
			return nil, fmt.Errorf("faultinject: cluster did not settle before injection %d: %w", i, err)
		}
		fault := opts.Faults[rng.Intn(len(opts.Faults))]
		inj := Injection{At: cluster.Now(), Fault: fault}
		kind, err := fault.Kind()
		if err != nil {
			return nil, fmt.Errorf("faultinject: injection %d: %w", i, err)
		}
		// Count closed-or-open outages before injecting: an injection that
		// opens an outage must not count it as pre-existing.
		outagesBefore := len(cluster.Stats().Outages)
		injSpan := opts.Trace.StartAt(trace.SpanInjection, inj.At, root,
			trace.String(trace.AttrTrack, "campaign"),
			trace.Int(trace.AttrIndex, int64(i)),
			trace.String(trace.AttrFault, fault.String()),
			trace.String(trace.AttrKind, kind.String()))
		if tracer != nil {
			tracer.SetParent(injSpan)
		}
		if rng.Float64() < opts.ASFraction {
			id := rng.Intn(opts.Config.ASInstances)
			inj.Target = fmt.Sprintf("as-%d", id)
			injSpan.Attr(trace.String(trace.AttrComponent, testbed.ComponentAS.String()))
			if err := cluster.InjectAS(id, fault); err != nil {
				return nil, fmt.Errorf("faultinject: injection %d: %w", i, err)
			}
		} else {
			pair := rng.Intn(opts.Config.HADBPairs)
			slot := rng.Intn(2)
			inj.Target = fmt.Sprintf("hadb-%d/%d", pair, slot)
			injSpan.Attr(trace.String(trace.AttrComponent, testbed.ComponentHADB.String()))
			if err := cluster.InjectHADB(pair, slot, fault); err != nil {
				return nil, fmt.Errorf("faultinject: injection %d: %w", i, err)
			}
			// Multi-node: a simultaneous second injection in another pair.
			if opts.Config.HADBPairs > 1 && rng.Float64() < opts.MultiNodeFraction {
				other := (pair + 1 + rng.Intn(opts.Config.HADBPairs-1)) % opts.Config.HADBPairs
				if err := cluster.InjectHADB(other, rng.Intn(2), fault); err != nil {
					return nil, fmt.Errorf("faultinject: injection %d (multi-node): %w", i, err)
				}
				inj.MultiNode = true
			}
		}
		healthyErr := waitHealthy(cluster, opts.RecoveryTimeout)
		stats := cluster.Stats()
		inj.RecoveryTime = cluster.Now() - inj.At
		inj.Recovered = healthyErr == nil && len(stats.Outages) == outagesBefore
		if inj.Recovered {
			rep.Successes++
		}
		injSpan.Attr(
			trace.String(trace.AttrTarget, inj.Target),
			trace.Bool(trace.AttrMultiNode, inj.MultiNode),
			trace.Bool(trace.AttrRecovered, inj.Recovered))
		if tracer != nil {
			tracer.SetParent(root)
		}
		injSpan.EndAt(cluster.Now())
		rep.ByFault[fault]++
		rep.Injections = append(rep.Injections, inj)
	}
	if tracer != nil {
		tracer.Close(cluster.Now())
		root.EndAt(cluster.Now())
	}
	rep.Stats = cluster.Stats()
	// Collect the recovery-time samples for parameter estimation.
	for _, rec := range cluster.Stats().Recoveries {
		if !rec.Success {
			continue
		}
		key := fmt.Sprintf("%s/%s", rec.Component, rec.Kind)
		rep.RecoveryTimes[key] = append(rep.RecoveryTimes[key], rec.Duration)
	}
	for _, conf := range opts.Confidences {
		b, err := estimate.CoverageLowerBound(len(rep.Injections), rep.Successes, conf)
		if err != nil {
			return nil, fmt.Errorf("faultinject: %w", err)
		}
		rep.CoverageBounds = append(rep.CoverageBounds, b)
	}
	return rep, nil
}

// waitHealthy advances the simulation in steps until every component is
// serving, or the timeout elapses.
func waitHealthy(c *testbed.Cluster, timeout time.Duration) error {
	const step = 5 * time.Second
	deadline := c.Now() + timeout
	for {
		if healthy(c.Snapshot()) {
			return nil
		}
		if c.Now() >= deadline {
			return fmt.Errorf("not healthy after %v: %w", timeout, ErrBadCampaign)
		}
		if err := c.Run(c.Now() + step); err != nil {
			return err
		}
	}
}

func healthy(s testbed.Snapshot) bool {
	if !s.SystemUp {
		return false
	}
	for _, up := range s.ASUp {
		if !up {
			return false
		}
	}
	for i, n := range s.PairActiveNodes {
		if n != 2 || s.PairDown[i] {
			return false
		}
	}
	return true
}
