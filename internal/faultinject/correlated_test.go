package faultinject

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/jsas"
	"repro/internal/testbed"
)

// corrDomains is a two-rack site covering all of Config1.
func corrDomains() []testbed.Domain {
	return []testbed.Domain{
		{Name: "site"},
		{Name: "rack-a", Parent: "site", AS: []int{0}, HADB: []testbed.NodeRef{{Pair: 0, Slot: 0}, {Pair: 1, Slot: 0}}},
		{Name: "rack-b", Parent: "site", AS: []int{1}, HADB: []testbed.NodeRef{{Pair: 0, Slot: 1}, {Pair: 1, Slot: 1}}},
	}
}

func frac(v float64) *float64 { return &v }

func TestCorrelatedCampaignValidation(t *testing.T) {
	t.Parallel()
	base := Options{Config: jsas.Config1, Params: jsas.DefaultParams(), Seed: 1, Injections: 5}
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"negative ccf", func(o *Options) { o.Domains = corrDomains(); o.CommonCauseFraction = frac(-0.1) }},
		{"ccf above 1", func(o *Options) { o.Domains = corrDomains(); o.CommonCauseFraction = frac(1.5) }},
		{"negative partition", func(o *Options) { o.PartitionFraction = frac(-0.1) }},
		{"fractions sum above 1", func(o *Options) {
			o.Domains = corrDomains()
			o.CommonCauseFraction = frac(0.6)
			o.PartitionFraction = frac(0.6)
		}},
		{"ccf without domains", func(o *Options) { o.CommonCauseFraction = frac(0.2) }},
		{"partition needs 2+ instances", func(o *Options) {
			o.Config = jsas.Config{ASInstances: 1, HADBPairs: 0}
			o.PartitionFraction = frac(0.2)
		}},
		{"bad domain member", func(o *Options) {
			o.Domains = []testbed.Domain{{Name: "a", AS: []int{99}}}
			o.CommonCauseFraction = frac(0.2)
		}},
		{"unknown fault", func(o *Options) { o.Faults = []testbed.Fault{testbed.Fault(42)} }},
	}
	for _, tc := range cases {
		opts := base
		tc.mutate(&opts)
		if _, err := Run(opts); !errors.Is(err, ErrBadCampaign) {
			t.Errorf("%s: err = %v, want ErrBadCampaign", tc.name, err)
		}
	}
}

func TestCorrelatedDecompositionConsistent(t *testing.T) {
	t.Parallel()
	rep, err := Run(Options{
		Config: jsas.Config1, Params: jsas.DefaultParams(), Seed: 9, Injections: 400,
		Domains:             corrDomains(),
		CommonCauseFraction: frac(0.15),
		PartitionFraction:   frac(0.1),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	inj, succ := 0, 0
	for _, cs := range rep.ByClass {
		inj += cs.Injections
		succ += cs.Successes
	}
	if inj != len(rep.Injections) {
		t.Errorf("per-class injections sum to %d, want %d", inj, len(rep.Injections))
	}
	if succ != rep.Successes {
		t.Errorf("per-class successes sum to %d, want %d", succ, rep.Successes)
	}
	if cs := rep.ByClass[testbed.CausePartition]; cs.ComponentFailures != 0 {
		t.Errorf("partition component failures = %d, want 0 (instances stay alive)", cs.ComponentFailures)
	}
	if cs := rep.ByClass[testbed.CauseCommonCause]; cs.Injections > 0 && cs.ComponentFailures <= cs.Injections {
		t.Errorf("common-cause bursts should fail >1 component each: %d failures over %d bursts",
			cs.ComponentFailures, cs.Injections)
	}
	var classDown time.Duration
	for cl := range rep.Stats.DowntimeByClass() {
		classDown += rep.Stats.DowntimeByClass()[cl]
	}
	if classDown != rep.Stats.DownTime {
		t.Errorf("per-class downtime sums to %v, want %v", classDown, rep.Stats.DownTime)
	}
	beta := rep.MeasuredCommonCauseFraction()
	if beta <= 0 || beta >= 1 {
		t.Errorf("measured beta = %v, want in (0,1) for a mixed campaign", beta)
	}
	if rep.Stats.Partitions == 0 {
		t.Error("no partitions recorded with a partition fraction set")
	}
}

// TestCorrelatedDeterministicAcrossParallelism pins the replication
// contract for correlated campaigns: the merged report — per-class
// decomposition included — and the merged availability time series are
// byte-identical for every worker count.
func TestCorrelatedDeterministicAcrossParallelism(t *testing.T) {
	t.Parallel()
	run := func(parallelism int) (*Report, []byte) {
		series := testbed.NewTimeSeries(time.Hour, 0)
		rep, err := RunReplicated(ReplicatedOptions{
			Options: Options{
				Config: jsas.Config1, Params: jsas.DefaultParams(), Seed: 77, Injections: 200,
				Domains:             corrDomains(),
				CommonCauseFraction: frac(0.2),
				PartitionFraction:   frac(0.1),
				TimeSeries:          series,
			},
			Replicas:    4,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatalf("RunReplicated(parallelism=%d): %v", parallelism, err)
		}
		var buf bytes.Buffer
		if err := series.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return rep, buf.Bytes()
	}
	rep1, json1 := run(1)
	for _, par := range []int{2, 0} {
		repN, jsonN := run(par)
		if !reflect.DeepEqual(rep1, repN) {
			t.Fatalf("correlated report differs between parallelism 1 and %d", par)
		}
		if !bytes.Equal(json1, jsonN) {
			t.Fatalf("merged time series JSON differs between parallelism 1 and %d", par)
		}
	}
	// The merged decomposition carries real correlated content.
	if rep1.ByClass[testbed.CauseCommonCause].Injections == 0 {
		t.Error("merged report lost the common-cause class")
	}
	if rep1.ByClass[testbed.CausePartition].Injections == 0 {
		t.Error("merged report lost the partition class")
	}
}

// TestUnsetFractionsMatchPlainCampaign pins the RNG-stream identity:
// declaring domains without fractions must not perturb a single draw, so
// the report matches a domain-free campaign exactly.
func TestUnsetFractionsMatchPlainCampaign(t *testing.T) {
	t.Parallel()
	base := Options{Config: jsas.Config1, Params: jsas.DefaultParams(), Seed: 13, Injections: 120}
	plain, err := Run(base)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	withDomains := base
	withDomains.Domains = corrDomains()
	domained, err := Run(withDomains)
	if err != nil {
		t.Fatalf("Run with domains: %v", err)
	}
	if !reflect.DeepEqual(plain.Injections, domained.Injections) {
		t.Error("injection records differ with declared-but-unused domains")
	}
	if plain.Successes != domained.Successes || plain.Stats.DownTime != domained.Stats.DownTime {
		t.Error("outcome differs with declared-but-unused domains")
	}
	// Explicit zero fractions are the same contract as nil.
	zeroed := withDomains
	zeroed.CommonCauseFraction = frac(0)
	zeroed.PartitionFraction = frac(0)
	z, err := Run(zeroed)
	if err != nil {
		t.Fatalf("Run with zero fractions: %v", err)
	}
	if !reflect.DeepEqual(plain.Injections, z.Injections) {
		t.Error("injection records differ with explicit zero fractions")
	}
}

func TestMeasuredBetaAllCommonCause(t *testing.T) {
	t.Parallel()
	rep, err := Run(Options{
		Config: jsas.Config1, Params: jsas.DefaultParams(), Seed: 5, Injections: 30,
		Domains:             corrDomains(),
		CommonCauseFraction: frac(1),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if beta := rep.MeasuredCommonCauseFraction(); beta != 1 {
		t.Errorf("beta = %v, want 1 when every injection is common-cause", beta)
	}
	if got := rep.ByClass[testbed.CauseIndependent].Injections; got != 0 {
		t.Errorf("independent injections = %d, want 0", got)
	}
}
