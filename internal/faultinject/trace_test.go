package faultinject

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/jsas"
	"repro/internal/trace"
)

// tracedCampaign runs a seeded campaign with the flight recorder attached
// (imperfect recovery on, so some injections escalate to system outages)
// and returns the report plus the JSONL stream the -trace flag would have
// written.
func tracedCampaign(t *testing.T, seed int64) (*Report, []byte) {
	t.Helper()
	var sink bytes.Buffer
	rec := trace.New(trace.Config{Capacity: trace.Unbounded, Sink: &sink})
	p := jsas.DefaultParams()
	p.FIR = 0.2
	rep, err := Run(Options{
		Config:     jsas.Config1,
		Params:     p,
		Seed:       seed,
		Injections: 150,
		Trace:      rec,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rec.SinkErr(); err != nil {
		t.Fatalf("trace sink: %v", err)
	}
	return rep, sink.Bytes()
}

// TestTraceReconstructsSimulatorAccounting is the acceptance check for the
// flight recorder: the outage timeline reconstructed from the JSONL trace
// must contain every outage the simulator recorded, and the per-mode
// downtime decomposition must total exactly the cluster's own DownTime
// accounting.
func TestTraceReconstructsSimulatorAccounting(t *testing.T) {
	t.Parallel()
	rep, jsonl := tracedCampaign(t, 1)
	if len(rep.Stats.Outages) == 0 {
		t.Fatal("campaign produced no outages; the reconstruction check is vacuous")
	}

	spans, err := trace.ReadJSONL(bytes.NewReader(jsonl))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	decomp := trace.AnalyzeOutages(spans)

	if got, want := len(decomp.Outages), len(rep.Stats.Outages); got != want {
		t.Fatalf("reconstructed %d outages, simulator recorded %d", got, want)
	}
	// Both lists are in start order; every interval must match the
	// simulator's (sim-time is exact int64 nanoseconds — no tolerance
	// needed on the endpoints).
	for i, o := range decomp.Outages {
		sim := rep.Stats.Outages[i]
		if o.Start != sim.Start || o.End != sim.End {
			t.Errorf("outage %d: trace [%v, %v], simulator [%v, %v]",
				i, o.Start, o.End, sim.Start, sim.End)
		}
		if o.Cause != sim.Cause.String() {
			t.Errorf("outage %d: trace cause %q, simulator %q", i, o.Cause, sim.Cause)
		}
		if o.Injection == 0 {
			t.Errorf("outage %d: no causal injection span (all campaign outages are injected)", i)
		}
	}

	const tol = time.Microsecond
	if diff := decomp.TotalDowntime - rep.Stats.DownTime; diff < -tol || diff > tol {
		t.Errorf("trace downtime %v != simulator downtime %v (diff %v)",
			decomp.TotalDowntime, rep.Stats.DownTime, diff)
	}
	// The per-mode decomposition partitions the total.
	var byMode time.Duration
	for _, m := range decomp.Modes {
		byMode += m.Downtime
	}
	if byMode+decomp.UnattributedDowntime != decomp.TotalDowntime {
		t.Errorf("mode downtimes %v + unattributed %v != total %v",
			byMode, decomp.UnattributedDowntime, decomp.TotalDowntime)
	}
	if decomp.UnattributedDowntime != 0 {
		t.Errorf("unattributed downtime %v in a fully-injected campaign", decomp.UnattributedDowntime)
	}
	// Every injection shows up in the mode rows.
	var injections int
	for _, m := range decomp.Modes {
		injections += m.Injections
	}
	if injections != len(rep.Injections) {
		t.Errorf("decomposition counts %d injections, campaign ran %d", injections, len(rep.Injections))
	}
}

// TestTraceDeterministicAcrossRuns is the regression test for observer /
// recorder ordering: two same-seed campaigns must produce byte-identical
// JSONL streams. Any map-iteration or scheduling nondeterminism in the
// tracer shows up here as a diff.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	t.Parallel()
	_, first := tracedCampaign(t, 11)
	_, second := tracedCampaign(t, 11)
	if len(first) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(first, second) {
		a := bytes.Split(first, []byte("\n"))
		b := bytes.Split(second, []byte("\n"))
		for i := 0; i < len(a) && i < len(b); i++ {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("same-seed traces diverge at line %d:\n  %s\n  %s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("same-seed traces differ in length: %d vs %d lines", len(a), len(b))
	}
}
