package faultinject

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/jsas"
	"repro/internal/trace"
)

func TestReplicaSeed(t *testing.T) {
	t.Parallel()
	if got := ReplicaSeed(2004, 0); got != 2004 {
		t.Errorf("replica 0 seed = %d, want the base seed", got)
	}
	seen := map[int64]int{2004: 0}
	for r := 1; r < 64; r++ {
		s := ReplicaSeed(2004, r)
		if prev, dup := seen[s]; dup {
			t.Fatalf("replicas %d and %d share seed %d", prev, r, s)
		}
		seen[s] = r
	}
	// Adjacent base seeds must not collide across replicas either.
	if ReplicaSeed(2004, 1) == ReplicaSeed(2005, 1) {
		t.Error("adjacent base seeds map to the same replica-1 seed")
	}
}

// TestReplicatedSingleMatchesSerial: -replicas 1 is the serial campaign,
// bit for bit — same report, same trace stream.
func TestReplicatedSingleMatchesSerial(t *testing.T) {
	t.Parallel()
	base := Options{Config: jsas.Config1, Params: perfectParams(), Seed: 17, Injections: 40}

	serialOpts := base
	serialRec := trace.New(trace.Config{Capacity: trace.Unbounded})
	serialOpts.Trace = serialRec
	serial, err := Run(serialOpts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	replOpts := base
	replRec := trace.New(trace.Config{Capacity: trace.Unbounded})
	replOpts.Trace = replRec
	repl, err := RunReplicated(ReplicatedOptions{Options: replOpts, Replicas: 1, Parallelism: 4})
	if err != nil {
		t.Fatalf("RunReplicated: %v", err)
	}

	if !reflect.DeepEqual(serial, repl) {
		t.Errorf("replicas=1 report differs from serial:\n%+v\nvs\n%+v", serial, repl)
	}
	if !reflect.DeepEqual(serialRec.Spans(), replRec.Spans()) {
		t.Error("replicas=1 trace stream differs from serial")
	}
}

// TestReplicatedDeterministicAcrossParallelism: the merged report and
// trace depend only on (Options, Replicas), never on worker count.
func TestReplicatedDeterministicAcrossParallelism(t *testing.T) {
	t.Parallel()
	run := func(parallelism int) (*Report, []trace.Span) {
		rec := trace.New(trace.Config{Capacity: trace.Unbounded})
		rep, err := RunReplicated(ReplicatedOptions{
			Options: Options{
				Config: jsas.Config1, Params: perfectParams(), Seed: 23,
				Injections: 40, Trace: rec,
			},
			Replicas:    4,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatalf("RunReplicated(parallelism=%d): %v", parallelism, err)
		}
		return rep, rec.Spans()
	}
	rep1, spans1 := run(1)
	for _, par := range []int{2, 4, 8} {
		repN, spansN := run(par)
		if !reflect.DeepEqual(rep1, repN) {
			t.Fatalf("report differs between parallelism 1 and %d", par)
		}
		if !reflect.DeepEqual(spans1, spansN) {
			t.Fatalf("trace stream differs between parallelism 1 and %d", par)
		}
	}
}

// TestReplicatedShardsAndPools: injections shard across replicas with the
// remainder on the lowest indices, and the merged report pools everything.
func TestReplicatedShardsAndPools(t *testing.T) {
	t.Parallel()
	rec := trace.New(trace.Config{Capacity: trace.Unbounded})
	rep, err := RunReplicated(ReplicatedOptions{
		Options: Options{
			Config: jsas.Config1, Params: perfectParams(), Seed: 31,
			Injections: 10, Trace: rec,
		},
		Replicas: 4,
	})
	if err != nil {
		t.Fatalf("RunReplicated: %v", err)
	}
	if rep.Replicas != 4 {
		t.Errorf("Replicas = %d, want 4", rep.Replicas)
	}
	if len(rep.Injections) != 10 {
		t.Fatalf("pooled injections = %d, want 10", len(rep.Injections))
	}
	if rep.Successes != 10 {
		t.Errorf("pooled successes = %d, want 10 (FIR=0)", rep.Successes)
	}
	byFault := 0
	for _, n := range rep.ByFault {
		byFault += n
	}
	if byFault != 10 {
		t.Errorf("ByFault total = %d, want 10", byFault)
	}
	if len(rep.CoverageBounds) != 2 {
		t.Fatalf("bounds = %d, want 2", len(rep.CoverageBounds))
	}
	if tot := rep.Stats.UpTime + rep.Stats.DownTime; tot <= 0 {
		t.Error("merged stats empty")
	}
	// 10 over 4 replicas → shards 3,3,2,2, visible as per-replica
	// injection spans in the merged trace.
	perReplica := map[int64]int{}
	for _, sp := range rec.Spans() {
		if sp.Name != trace.SpanInjection {
			continue
		}
		a, ok := sp.Attr(trace.AttrReplica)
		if !ok {
			t.Fatalf("injection span %d missing replica attr", sp.ID)
		}
		perReplica[a.Int]++
	}
	want := map[int64]int{0: 3, 1: 3, 2: 2, 3: 2}
	if !reflect.DeepEqual(perReplica, want) {
		t.Errorf("per-replica shards = %v, want %v", perReplica, want)
	}
	// The merged trace still supports outage reconstruction (no outages
	// expected with FIR=0, but the analysis must not error or cross wires).
	or := trace.AnalyzeOutages(rec.Spans())
	if len(or.Outages) != 0 {
		t.Errorf("FIR=0 replicated campaign reconstructed %d outages", len(or.Outages))
	}

	// More replicas than injections clamps: no empty replica clusters.
	small, err := RunReplicated(ReplicatedOptions{
		Options:  Options{Config: jsas.Config1, Params: perfectParams(), Seed: 31, Injections: 3},
		Replicas: 8,
	})
	if err != nil {
		t.Fatalf("RunReplicated clamp: %v", err)
	}
	if small.Replicas != 3 || len(small.Injections) != 3 {
		t.Errorf("clamped run: replicas = %d, injections = %d, want 3 and 3", small.Replicas, len(small.Injections))
	}
}

// TestReplicatedPartialFailure: a failing replica surfaces as a
// ReplicaError naming the replica, its seed, and how far it got — and the
// other replicas' completed injections are still pooled.
func TestReplicatedPartialFailure(t *testing.T) {
	t.Parallel()
	base := Options{
		Config: jsas.Config1, Params: perfectParams(), Seed: 21,
		Injections:      12,
		RecoveryTimeout: time.Second, // recoveries take tens of seconds → every replica fails
	}
	const replicas = 4
	merged, err := RunReplicated(ReplicatedOptions{Options: base, Replicas: replicas, Parallelism: 2})
	if err == nil {
		t.Fatal("expected replica failures with a 1 s recovery timeout")
	}
	var re *ReplicaError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want a *ReplicaError in the chain", err)
	}
	if !errors.Is(err, ErrBadCampaign) {
		t.Fatalf("err = %v, want ErrBadCampaign in the chain", err)
	}

	// Reproduce each replica serially and check the merge kept everything.
	wantInjections, wantSuccesses, wantFailures := 0, 0, 0
	for i := 0; i < replicas; i++ {
		ropts := base
		ropts.Injections = base.Injections / replicas
		ropts.Seed = ReplicaSeed(base.Seed, i)
		rep, rerr := Run(ropts)
		if rerr != nil {
			wantFailures++
		}
		if rep != nil {
			wantInjections += len(rep.Injections)
			wantSuccesses += rep.Successes
		}
		if i == re.Replica {
			if re.Seed != ropts.Seed {
				t.Errorf("ReplicaError.Seed = %d, want %d", re.Seed, ropts.Seed)
			}
			done := 0
			if rep != nil {
				done = len(rep.Injections)
			}
			if re.Completed != done {
				t.Errorf("ReplicaError.Completed = %d, want %d", re.Completed, done)
			}
		}
	}
	if merged == nil {
		t.Fatal("partial merged report discarded")
	}
	if len(merged.Injections) != wantInjections {
		t.Errorf("pooled injections = %d, want %d", len(merged.Injections), wantInjections)
	}
	if merged.Successes != wantSuccesses {
		t.Errorf("pooled successes = %d, want %d", merged.Successes, wantSuccesses)
	}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		if got := len(joined.Unwrap()); got != wantFailures {
			t.Errorf("joined errors = %d, want %d failed replicas", got, wantFailures)
		}
	} else if wantFailures > 1 {
		t.Errorf("expected a joined error for %d failed replicas", wantFailures)
	}
}

func TestReplicatedValidation(t *testing.T) {
	t.Parallel()
	if _, err := RunReplicated(ReplicatedOptions{
		Options:  Options{Config: jsas.Config1, Params: perfectParams(), Injections: 10},
		Replicas: -2,
	}); !errors.Is(err, ErrBadCampaign) {
		t.Errorf("negative replicas: err = %v", err)
	}
	if _, err := RunReplicated(ReplicatedOptions{
		Options:  Options{Config: jsas.Config1, Params: perfectParams(), Injections: 0},
		Replicas: 4,
	}); !errors.Is(err, ErrBadCampaign) {
		t.Errorf("0 injections: err = %v", err)
	}
}
