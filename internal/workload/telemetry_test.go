package workload

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/jsas"
	"repro/internal/progress"
	"repro/internal/testbed"
)

// TestRunTelemetryDoesNotPerturbResult: a tracked longevity run must
// produce exactly the untracked result.
func TestRunTelemetryDoesNotPerturbResult(t *testing.T) {
	t.Parallel()
	base := RunOptions{
		Config:          jsas.Config1,
		Params:          jsas.DefaultParams(),
		Profile:         Marketplace(),
		Duration:        48 * time.Hour,
		Seed:            5,
		OrganicFailures: true,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}

	tracked := base
	tracked.Progress = progress.New(ProgressChunks(base.Duration), progress.WithUnit("chunks"))
	tracked.TimeSeries = testbed.NewTimeSeries(time.Hour, 0)
	got, err := Run(tracked)
	if err != nil {
		t.Fatalf("tracked run: %v", err)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Fatal("telemetry changed the longevity result")
	}
	if n := tracked.Progress.Completed(); n != ProgressChunks(base.Duration) {
		t.Fatalf("tracker counted %d chunks, want %d", n, ProgressChunks(base.Duration))
	}
	// The series covers the full horizon.
	var total time.Duration
	for _, w := range tracked.TimeSeries.Windows() {
		total += w.Up + w.Down
	}
	ev := tracked.TimeSeries.Evicted()
	if total+ev.Up+ev.Down != base.Duration {
		t.Fatalf("series covers %s, want %s", total+ev.Up+ev.Down, base.Duration)
	}
}

// TestProgressChunksMatchesLoop: ProgressChunks must predict the exact
// Done count for awkward durations (non-divisible, tiny).
func TestProgressChunksMatchesLoop(t *testing.T) {
	t.Parallel()
	for _, d := range []time.Duration{
		7 * 24 * time.Hour,
		100 * time.Nanosecond, // below runChunks: single chunk
		96 * time.Hour,
		97*time.Hour + 13*time.Minute + 7*time.Nanosecond,
	} {
		tr := progress.New(0)
		_, err := Run(RunOptions{
			Config:   jsas.Config1,
			Params:   jsas.DefaultParams(),
			Profile:  Marketplace(),
			Duration: d,
			Seed:     1,
			Progress: tr,
		})
		if err != nil {
			t.Fatalf("duration %v: %v", d, err)
		}
		if got, want := tr.Completed(), ProgressChunks(d); got != want {
			t.Fatalf("duration %v: counted %d chunks, ProgressChunks says %d", d, got, want)
		}
	}
}

// TestSeriesTimeSeriesDeterministicAcrossParallelism: the merged series
// must be byte-identical at any Parallelism (merge in seed order).
func TestSeriesTimeSeriesDeterministicAcrossParallelism(t *testing.T) {
	t.Parallel()
	render := func(parallelism int) []byte {
		ts := testbed.NewTimeSeries(6*time.Hour, 0)
		opts := SeriesOptions{
			Run: RunOptions{
				Config:          jsas.Config1,
				Params:          jsas.DefaultParams(),
				Profile:         Marketplace(),
				Duration:        36 * time.Hour,
				Seed:            9,
				OrganicFailures: true,
				TimeSeries:      ts,
			},
			Runs:        3,
			Parallelism: parallelism,
		}
		if _, err := RunSeriesWith(opts); err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		var buf bytes.Buffer
		if err := ts.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	for _, p := range []int{2, 3} {
		if got := render(p); !bytes.Equal(serial, got) {
			t.Fatalf("parallelism %d produced a different time series", p)
		}
	}
}

// TestSeriesProgressObservesAvailability: the series feeds each run's
// availability into the shared tracker's running statistic.
func TestSeriesProgressObservesAvailability(t *testing.T) {
	t.Parallel()
	tr := progress.New(0, progress.WithStat("availability"))
	res, err := RunSeriesWith(SeriesOptions{
		Run: RunOptions{
			Config:   jsas.Config1,
			Params:   jsas.DefaultParams(),
			Profile:  Marketplace(),
			Duration: 24 * time.Hour,
			Seed:     2,
			Progress: tr,
		},
		Runs:        3,
		Parallelism: 2,
	})
	if err != nil {
		t.Fatalf("RunSeriesWith: %v", err)
	}
	snap := tr.Snapshot()
	if snap.StatN != 3 {
		t.Fatalf("observed %d availabilities, want 3", snap.StatN)
	}
	var mean float64
	for _, r := range res.Runs {
		mean += r.Availability
	}
	mean /= float64(len(res.Runs))
	if math.Abs(snap.StatMean-mean) > 1e-12 {
		t.Fatalf("running mean availability %v != pooled %v", snap.StatMean, mean)
	}
}
