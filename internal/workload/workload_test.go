package workload

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/jsas"
)

func TestProfilesMatchPaper(t *testing.T) {
	t.Parallel()
	m := Marketplace()
	if m.SessionKB != 50 {
		t.Errorf("Marketplace session = %d KB, want 50", m.SessionKB)
	}
	n := NileBookstore()
	if n.SessionKB != 30 {
		t.Errorf("NileBookstore session = %d KB, want 30", n.SessionKB)
	}
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		// Paper: 60–70% load factor.
		if p.LoadFactor < 0.6 || p.LoadFactor > 0.7 {
			t.Errorf("profile %s load factor = %g, want 0.6–0.7", p.Name, p.LoadFactor)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	t.Parallel()
	bad := []Profile{
		{},
		{Name: "x", SessionKB: 0, SessionsPerInstance: 1, RequestRatePerSecond: 1, LoadFactor: 0.5},
		{Name: "x", SessionKB: 1, SessionsPerInstance: 0, RequestRatePerSecond: 1, LoadFactor: 0.5},
		{Name: "x", SessionKB: 1, SessionsPerInstance: 1, RequestRatePerSecond: 0, LoadFactor: 0.5},
		{Name: "x", SessionKB: 1, SessionsPerInstance: 1, RequestRatePerSecond: 1, LoadFactor: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadRun) {
			t.Errorf("bad profile %d: err = %v", i, err)
		}
	}
}

func TestNodeDataGB(t *testing.T) {
	t.Parallel()
	// Paper's test config: 2 instances × 10,000 sessions × 50 KB = 1 GB
	// total, over 2 pairs → 0.5 GB per node (paper rounds to "within 1GB").
	gb := NodeDataGB(jsas.Config1, Marketplace())
	if math.Abs(gb-0.5) > 1e-9 {
		t.Errorf("NodeDataGB = %v, want 0.5", gb)
	}
	if NodeDataGB(jsas.Config{ASInstances: 1}, Marketplace()) != 0 {
		t.Error("no pairs should give 0")
	}
}

// TestSevenDayStabilityRun reproduces the paper's §3 stability runs:
// roughly seven million requests per 7-day run at a 60–70% load factor.
func TestSevenDayStabilityRun(t *testing.T) {
	t.Parallel()
	res, err := Run(RunOptions{
		Config:   jsas.Config1,
		Params:   jsas.DefaultParams(),
		Profile:  Marketplace(),
		Duration: 7 * 24 * time.Hour,
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.RequestsServed < 6.5e6 || res.RequestsServed > 8e6 {
		t.Errorf("requests = %.2g, want ≈ 7e6", res.RequestsServed)
	}
	if res.Availability != 1 {
		t.Errorf("availability = %v, want 1 (no organic failures)", res.Availability)
	}
	if res.ASInstanceFailures != 0 || res.SystemOutages != 0 {
		t.Errorf("failures = %d, outages = %d; want 0", res.ASInstanceFailures, res.SystemOutages)
	}
}

// TestTwentyFourDayRunBounds reproduces the Equation (2) estimates from
// the paper's 24-day sanity run: with zero failures over 2 instances ×
// 24 days, the 95% bound is 1/16 days and the 99.5% bound 1/9 days.
func TestTwentyFourDayRunBounds(t *testing.T) {
	t.Parallel()
	res, err := Run(RunOptions{
		Config:   jsas.Config1,
		Params:   jsas.DefaultParams(),
		Profile:  NileBookstore(),
		Duration: 24 * 24 * time.Hour,
		Seed:     2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.InstanceExposure != 48*24*time.Hour {
		t.Fatalf("exposure = %v, want 48 days", res.InstanceExposure)
	}
	if len(res.RateBounds) != 2 {
		t.Fatalf("bounds = %d, want 2", len(res.RateBounds))
	}
	perDay95 := res.RateBounds[0].PerHour * 24
	if math.Abs(1/perDay95-16) > 0.1 {
		t.Errorf("95%% bound = 1/%.2f days, want 1/16", 1/perDay95)
	}
	perDay995 := res.RateBounds[1].PerHour * 24
	if math.Abs(1/perDay995-9) > 0.1 {
		t.Errorf("99.5%% bound = 1/%.2f days, want 1/9", 1/perDay995)
	}
}

// TestOrganicRunCountsFailures: with organic failures the bound widens
// with the observed count.
func TestOrganicRunCountsFailures(t *testing.T) {
	t.Parallel()
	res, err := Run(RunOptions{
		Config:          jsas.Config1,
		Params:          jsas.DefaultParams(),
		Profile:         Marketplace(),
		Duration:        60 * 24 * time.Hour,
		Seed:            3,
		OrganicFailures: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// At 52/yr/instance over 2 instances × 60 days ≈ 17 expected failures.
	if res.ASInstanceFailures < 5 {
		t.Errorf("organic failures = %d, expected noticeably more", res.ASInstanceFailures)
	}
	// Bound must cover the true rate (52/yr ≈ 0.00594/h) with high
	// probability.
	if res.RateBounds[0].PerHour < 52.0/8760/2 {
		t.Errorf("95%% bound %.5f/h implausibly below half the true rate", res.RateBounds[0].PerHour)
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()
	if _, err := Run(RunOptions{Profile: Profile{}}); !errors.Is(err, ErrBadRun) {
		t.Errorf("bad profile: err = %v", err)
	}
	if _, err := Run(RunOptions{
		Config: jsas.Config1, Params: jsas.DefaultParams(),
		Profile: Marketplace(), Duration: 0,
	}); !errors.Is(err, ErrBadRun) {
		t.Errorf("zero duration: err = %v", err)
	}
	if _, err := Run(RunOptions{
		Config: jsas.Config{}, Params: jsas.DefaultParams(),
		Profile: Marketplace(), Duration: time.Hour,
	}); err == nil {
		t.Error("bad config accepted")
	}
}

// TestRunSeriesPoolsExposure: multiple 7-day runs pool their exposure and
// tighten the Equation (2) bound relative to a single run.
func TestRunSeriesPoolsExposure(t *testing.T) {
	t.Parallel()
	opts := RunOptions{
		Config:   jsas.Config1,
		Params:   jsas.DefaultParams(),
		Profile:  NileBookstore(),
		Duration: 7 * 24 * time.Hour,
		Seed:     10,
	}
	series, err := RunSeries(opts, 4)
	if err != nil {
		t.Fatalf("RunSeries: %v", err)
	}
	if len(series.Runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(series.Runs))
	}
	wantExposure := 4 * 2 * 7 * 24 * time.Hour
	if series.TotalExposure != wantExposure {
		t.Errorf("exposure = %v, want %v", series.TotalExposure, wantExposure)
	}
	single, err := Run(opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if series.TotalFailures == 0 && single.ASInstanceFailures == 0 {
		if series.PooledBounds[0].PerHour >= single.RateBounds[0].PerHour {
			t.Errorf("pooled bound %v should be tighter than single-run %v",
				series.PooledBounds[0].PerHour, single.RateBounds[0].PerHour)
		}
	}
	// ~28M requests over four 7-day runs.
	if series.TotalRequests < 4*6.5e6 {
		t.Errorf("total requests = %.3g, want ≈ 2.8e7", series.TotalRequests)
	}
}

func TestRunSeriesValidation(t *testing.T) {
	t.Parallel()
	if _, err := RunSeries(RunOptions{}, 0); !errors.Is(err, ErrBadRun) {
		t.Errorf("runs=0: err = %v", err)
	}
	if _, err := RunSeries(RunOptions{Profile: Profile{}}, 1); err == nil {
		t.Error("bad options accepted")
	}
}
