// Package workload models the two benchmark applications the paper used
// for its longevity (stability) measurements — the digital-marketplace
// J2EE application and the Nile Bookstore e-commerce benchmark — and
// provides the longevity-run driver that exercises the simulated testbed
// under a sustained load factor and turns the observed failure counts into
// the Equation (2) failure-rate bounds.
package workload

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/estimate"
	"repro/internal/jsas"
	"repro/internal/progress"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// ErrBadRun is reported for invalid longevity-run options.
var ErrBadRun = errors.New("workload: invalid run options")

// Profile describes a benchmark application's load shape.
type Profile struct {
	// Name of the benchmark.
	Name string
	// SessionKB is the average HTTP session size persisted to HADB.
	SessionKB int
	// SessionsPerInstance is the concurrent session population carried by
	// each AS instance.
	SessionsPerInstance int
	// RequestRatePerSecond is the offered request rate at full capacity.
	RequestRatePerSecond float64
	// LoadFactor is the fraction of capacity exercised (paper: 0.6–0.7).
	LoadFactor float64
}

// Validate checks the profile.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("unnamed profile: %w", ErrBadRun)
	case p.SessionKB <= 0:
		return fmt.Errorf("profile %s: SessionKB = %d: %w", p.Name, p.SessionKB, ErrBadRun)
	case p.SessionsPerInstance <= 0:
		return fmt.Errorf("profile %s: SessionsPerInstance = %d: %w", p.Name, p.SessionsPerInstance, ErrBadRun)
	case p.RequestRatePerSecond <= 0:
		return fmt.Errorf("profile %s: RequestRatePerSecond = %g: %w", p.Name, p.RequestRatePerSecond, ErrBadRun)
	case p.LoadFactor <= 0 || p.LoadFactor > 1:
		return fmt.Errorf("profile %s: LoadFactor = %g: %w", p.Name, p.LoadFactor, ErrBadRun)
	}
	return nil
}

// EffectiveRate is the offered rate at the profile's load factor.
func (p Profile) EffectiveRate() float64 {
	return p.RequestRatePerSecond * p.LoadFactor
}

// Marketplace is the paper's first test application: a digital-marketplace
// J2EE web application with Catalog, Auction, Pricing, and Order
// Management modules; 50 KB average sessions.
func Marketplace() Profile {
	return Profile{
		Name:                 "Digital Marketplace",
		SessionKB:            50,
		SessionsPerInstance:  10000,
		RequestRatePerSecond: 18,
		LoadFactor:           0.65,
	}
}

// NileBookstore is the paper's second test application: the Nile Bookstore
// end-to-end e-commerce benchmark; 30 KB average sessions.
func NileBookstore() Profile {
	return Profile{
		Name:                 "Nile Bookstore",
		SessionKB:            30,
		SessionsPerInstance:  10000,
		RequestRatePerSecond: 18,
		LoadFactor:           0.65,
	}
}

// Profiles returns the paper's two benchmark profiles.
func Profiles() []Profile {
	return []Profile{Marketplace(), NileBookstore()}
}

// NodeDataGB estimates the session data volume per HADB node for a
// deployment: each DRU holds the complete session set spread across its
// pairs (paper §5: within 1 GB per node for the test configuration).
func NodeDataGB(cfg jsas.Config, p Profile) float64 {
	if cfg.HADBPairs == 0 {
		return 0
	}
	totalGB := float64(cfg.ASInstances) * float64(p.SessionsPerInstance) * float64(p.SessionKB) / 1e6
	return totalGB / float64(cfg.HADBPairs)
}

// RunOptions configures a longevity run.
type RunOptions struct {
	Config jsas.Config
	Params jsas.Params
	// Profile is the benchmark application profile.
	Profile Profile
	// Duration is the virtual run length (paper: 7-day runs plus one
	// 24-day run).
	Duration time.Duration
	Seed     int64
	// OrganicFailures enables random failures at the Params rates; the
	// paper's stability runs observed none, which is consistent with the
	// rates over a 7-day window but not guaranteed — the estimator uses
	// whatever count the run produced.
	OrganicFailures bool
	// Confidences for the Equation (2) failure-rate bounds (defaults to
	// 0.95 and 0.995, as in the paper).
	Confidences []float64
	// Trace, if set, records the run as a sim-time span tree: one longevity
	// root span with component failure / recovery / outage spans beneath it.
	Trace *trace.Recorder
	// Progress, if set, receives one Done() per simulated chunk (runChunks
	// per run), so multi-day virtual runs report completion at sub-run
	// granularity. The tracker is atomic: a series shares one across runs.
	// nil (the default) costs one predictable branch per chunk.
	Progress *progress.Tracker
	// TimeSeries, if set, consumes the cluster event stream into a
	// windowed sim-time availability series (finished with the run horizon
	// before RunCtx returns). A series gives each run a private recorder
	// and merges them in series order.
	TimeSeries *testbed.TimeSeries
}

// Result summarizes a longevity run.
type Result struct {
	Profile  Profile
	Config   jsas.Config
	Duration time.Duration
	// RequestsServed/RequestsFailed are the workload counters.
	RequestsServed, RequestsFailed float64
	// Availability is the observed uptime fraction.
	Availability float64
	// ASInstanceFailures counts AS instance failures during the run.
	ASInstanceFailures int
	// SystemOutages counts system-level outages.
	SystemOutages int
	// InstanceExposure is the total AS exposure (instances × duration)
	// the Equation (2) bound is computed over.
	InstanceExposure time.Duration
	// RateBounds are the Equation (2) upper bounds on the per-instance AS
	// failure rate at each requested confidence.
	RateBounds []estimate.FailureRateBound
}

// runChunks is how many slices a longevity run's virtual duration is cut
// into for cancellation checks: the simulation advances chunk by chunk
// (processing exactly the same event sequence as one uninterrupted
// advance, so results are byte-identical) and a canceled context is
// noticed within one chunk — about 1.75 simulated hours on a 7-day run.
const runChunks = 96

// ProgressChunks reports how many Progress.Done ticks one run of virtual
// length d produces (its cancellation-chunk count), so drivers can size a
// progress tracker's total exactly: Runs × ProgressChunks(d).
func ProgressChunks(d time.Duration) int64 {
	step := d / runChunks
	if step <= 0 {
		return 1
	}
	n := int64(d / step)
	if d%step != 0 {
		n++
	}
	return n
}

// Run executes a longevity test on a fresh simulated cluster. It is
// RunCtx with a background context.
func Run(opts RunOptions) (*Result, error) {
	return RunCtx(context.Background(), opts)
}

// RunCtx is Run with cancellation: the virtual run advances in runChunks
// slices and aborts with an error wrapping ctx.Err() when the context is
// canceled. A canceled run returns no Result — a truncated exposure
// window would silently weaken the Equation (2) bound it feeds.
func RunCtx(ctx context.Context, opts RunOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Profile.Validate(); err != nil {
		return nil, err
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("duration %v: %w", opts.Duration, ErrBadRun)
	}
	if len(opts.Confidences) == 0 {
		opts.Confidences = []float64{0.95, 0.995}
	}
	timing := testbed.DefaultTiming()
	if gb := NodeDataGB(opts.Config, opts.Profile); gb > 0 {
		timing.NodeDataGB = gb
	}
	var (
		tracer   *testbed.Tracer
		root     *trace.Active
		observer testbed.Observer
	)
	if opts.Trace != nil {
		root = opts.Trace.StartAt(trace.SpanLongevity, 0, nil,
			trace.String(trace.AttrTrack, "longevity"),
			trace.String("profile", opts.Profile.Name),
			trace.Int("seed", opts.Seed))
		tracer = testbed.NewTracer(opts.Trace, root)
		observer = tracer.Observe
	}
	if opts.TimeSeries != nil {
		observer = testbed.MultiObserver(observer, opts.TimeSeries.Observe)
	}
	cluster, err := testbed.New(testbed.Options{
		Config:               opts.Config,
		Params:               opts.Params,
		Timing:               &timing,
		Seed:                 opts.Seed,
		OrganicFailures:      opts.OrganicFailures,
		Maintenance:          false, // stability runs exclude scheduled maintenance
		RequestRatePerSecond: opts.Profile.EffectiveRate(),
		SessionsPerInstance:  opts.Profile.SessionsPerInstance,
		Observer:             observer,
	})
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	step := opts.Duration / runChunks
	if step <= 0 {
		step = opts.Duration
	}
	for until := step; ; until += step {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("workload: run canceled at %v of %v: %w",
				cluster.Now(), opts.Duration, err)
		}
		if until > opts.Duration {
			until = opts.Duration
		}
		if err := cluster.Run(until); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		if opts.Progress != nil {
			opts.Progress.Done()
		}
		if until == opts.Duration {
			break
		}
	}
	if tracer != nil {
		tracer.Close(cluster.Now())
		root.EndAt(cluster.Now())
	}
	if opts.TimeSeries != nil {
		opts.TimeSeries.FinishAt(cluster.Now())
	}
	stats := cluster.Stats()
	cluster.Close()
	res := &Result{
		Profile:          opts.Profile,
		Config:           opts.Config,
		Duration:         opts.Duration,
		RequestsServed:   stats.RequestsServed,
		RequestsFailed:   stats.RequestsFailed,
		Availability:     stats.Availability(),
		SystemOutages:    len(stats.Outages),
		InstanceExposure: time.Duration(opts.Config.ASInstances) * opts.Duration,
	}
	for _, r := range stats.Recoveries {
		if r.Component == testbed.ComponentAS {
			res.ASInstanceFailures++
		}
	}
	for _, conf := range opts.Confidences {
		b, err := estimate.FailureRateUpperBound(res.InstanceExposure, res.ASInstanceFailures, conf)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		res.RateBounds = append(res.RateBounds, b)
	}
	return res, nil
}
