package workload

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/estimate"
	"repro/internal/pool"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// SeriesResult aggregates a campaign of repeated longevity runs — the
// paper performed "multiple 7-day duration runs" and pooled the exposure
// when bounding the failure rate.
type SeriesResult struct {
	// Runs holds the completed runs in series order. When some runs failed
	// (see the joined error), their slots are simply absent.
	Runs []*Result
	// TotalExposure is the pooled instance exposure across runs.
	TotalExposure time.Duration
	// TotalFailures is the pooled AS failure count.
	TotalFailures int
	// TotalRequests is the pooled request count.
	TotalRequests float64
	// PooledBounds are the Equation (2) bounds over the pooled data; the
	// pooled bound is tighter than any single run's.
	PooledBounds []estimate.FailureRateBound
}

// SeriesOptions configures a longevity series.
type SeriesOptions struct {
	// Run is the per-run configuration; run i uses seed Run.Seed + i, the
	// series' long-standing convention.
	Run RunOptions
	// Runs is the number of independent longevity runs (paper: multiple
	// 7-day runs).
	Runs int
	// Parallelism caps how many runs execute concurrently (0 = one worker
	// per run). The series result is identical for every value: runs are
	// pooled in series order, never in completion order.
	Parallelism int
}

// RunSeries executes runs independent longevity tests (distinct seeds)
// serially and pools their exposure for the failure-rate bound. It is
// RunSeriesWith with no parallelism.
func RunSeries(opts RunOptions, runs int) (*SeriesResult, error) {
	return RunSeriesWith(SeriesOptions{Run: opts, Runs: runs, Parallelism: 1})
}

// RunSeriesWith executes a longevity series, optionally running the
// independent runs concurrently. Each run gets a fresh cluster; pooling in
// series (seed) order makes the result independent of Parallelism.
//
// When opts.Run.Trace is set and Runs > 1, each run records into its own
// recorder and the streams are merged into opts.Run.Trace in series order,
// tagged with trace.AttrReplica (a single run records directly, exactly as
// Run does). A run that fails does not abort the series: completed runs
// are still pooled, and the failures are returned errors.Join-ed in series
// order alongside the partial result. It is RunSeriesWithCtx with a
// background context.
func RunSeriesWith(opts SeriesOptions) (*SeriesResult, error) {
	return RunSeriesWithCtx(context.Background(), opts)
}

// RunSeriesWithCtx is RunSeriesWith with cancellation: a canceled ctx
// stops dispatching new runs and interrupts in-flight ones at their next
// chunk boundary; completed runs are still pooled (the partial-series
// contract), with the interrupted runs' cancellations joined into the
// returned error in series order.
func RunSeriesWithCtx(ctx context.Context, opts SeriesOptions) (*SeriesResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Runs <= 0 {
		return nil, fmt.Errorf("runs = %d, want ≥ 1: %w", opts.Runs, ErrBadRun)
	}
	confidences := opts.Run.Confidences
	if len(confidences) == 0 {
		confidences = []float64{0.95, 0.995}
	}
	results := make([]*Result, opts.Runs)
	errs := make([]error, opts.Runs)
	recs := make([]*trace.Recorder, opts.Runs)
	series := make([]*testbed.TimeSeries, opts.Runs)
	splitTrace := opts.Run.Trace != nil && opts.Runs > 1
	splitTS := opts.Run.TimeSeries != nil && opts.Runs > 1
	popts := pool.Options{Workers: opts.Parallelism, ContinueOnError: true}
	if opts.Run.Progress != nil {
		// Per-run availability feeds the tracker's running statistic; the
		// hook runs on the worker that wrote results[i], so the read is
		// ordered. (Per-chunk Done ticks come from RunCtx itself.)
		popts.OnTaskDone = func(i int) {
			if res := results[i]; res != nil {
				opts.Run.Progress.Observe(res.Availability)
			}
		}
	}
	poolErr := pool.Run(ctx, opts.Runs, popts,
		func(_, i int) error {
			runOpts := opts.Run
			runOpts.Seed = opts.Run.Seed + int64(i)
			if splitTrace {
				recs[i] = trace.New(trace.Config{Capacity: trace.Unbounded})
				runOpts.Trace = recs[i]
			}
			if splitTS {
				// Private per-run recorder (the series merge below runs in
				// seed order, so the merged series never depends on
				// Parallelism).
				series[i] = testbed.NewTimeSeries(opts.Run.TimeSeries.Width(), opts.Run.TimeSeries.Cap())
				runOpts.TimeSeries = series[i]
			}
			res, err := RunCtx(ctx, runOpts)
			if err != nil {
				errs[i] = fmt.Errorf("run %d: %w", i+1, err)
				return errs[i]
			}
			results[i] = res
			return nil
		})
	if splitTrace {
		for i, rc := range recs {
			if rc != nil {
				opts.Run.Trace.Import(trace.TagReplica(rc.Spans(), i))
			}
		}
	}
	if splitTS {
		for _, ts := range series {
			if ts != nil {
				opts.Run.TimeSeries.Merge(ts)
			}
		}
	}
	out := &SeriesResult{}
	for _, res := range results {
		if res == nil {
			continue
		}
		out.Runs = append(out.Runs, res)
		out.TotalExposure += res.InstanceExposure
		out.TotalFailures += res.ASInstanceFailures
		out.TotalRequests += res.RequestsServed
	}
	if out.TotalExposure > 0 {
		for _, conf := range confidences {
			b, err := estimate.FailureRateUpperBound(out.TotalExposure, out.TotalFailures, conf)
			if err != nil {
				return out, fmt.Errorf("pooled bound: %w", err)
			}
			out.PooledBounds = append(out.PooledBounds, b)
		}
	}
	var joined []error
	for _, e := range errs {
		if e != nil {
			joined = append(joined, e)
			if e == poolErr {
				// The pool reports the lowest-indexed run error; it is
				// already in the per-run list.
				poolErr = nil
			}
		}
	}
	if poolErr != nil {
		// Cancellation with no per-run error (runs skipped before starting)
		// must still surface, or a canceled series would read as complete.
		joined = append(joined, fmt.Errorf("workload: series canceled: %w", poolErr))
	}
	return out, errors.Join(joined...)
}
