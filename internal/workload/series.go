package workload

import (
	"fmt"
	"time"

	"repro/internal/estimate"
)

// SeriesResult aggregates a campaign of repeated longevity runs — the
// paper performed "multiple 7-day duration runs" and pooled the exposure
// when bounding the failure rate.
type SeriesResult struct {
	Runs []*Result
	// TotalExposure is the pooled instance exposure across runs.
	TotalExposure time.Duration
	// TotalFailures is the pooled AS failure count.
	TotalFailures int
	// TotalRequests is the pooled request count.
	TotalRequests float64
	// PooledBounds are the Equation (2) bounds over the pooled data; the
	// pooled bound is tighter than any single run's.
	PooledBounds []estimate.FailureRateBound
}

// RunSeries executes runs independent longevity tests (distinct seeds) and
// pools their exposure for the failure-rate bound.
func RunSeries(opts RunOptions, runs int) (*SeriesResult, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("runs = %d, want ≥ 1: %w", runs, ErrBadRun)
	}
	confidences := opts.Confidences
	if len(confidences) == 0 {
		confidences = []float64{0.95, 0.995}
	}
	out := &SeriesResult{}
	for i := 0; i < runs; i++ {
		runOpts := opts
		runOpts.Seed = opts.Seed + int64(i)
		res, err := Run(runOpts)
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", i+1, err)
		}
		out.Runs = append(out.Runs, res)
		out.TotalExposure += res.InstanceExposure
		out.TotalFailures += res.ASInstanceFailures
		out.TotalRequests += res.RequestsServed
	}
	for _, conf := range confidences {
		b, err := estimate.FailureRateUpperBound(out.TotalExposure, out.TotalFailures, conf)
		if err != nil {
			return nil, fmt.Errorf("pooled bound: %w", err)
		}
		out.PooledBounds = append(out.PooledBounds, b)
	}
	return out, nil
}
