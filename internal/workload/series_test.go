package workload

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/jsas"
	"repro/internal/trace"
)

// TestRunSeriesWithDeterministicAcrossParallelism: the pooled series
// result and merged trace depend only on the options, not worker count.
func TestRunSeriesWithDeterministicAcrossParallelism(t *testing.T) {
	t.Parallel()
	run := func(parallelism int) (*SeriesResult, []trace.Span) {
		rec := trace.New(trace.Config{Capacity: trace.Unbounded})
		series, err := RunSeriesWith(SeriesOptions{
			Run: RunOptions{
				Config:          jsas.Config1,
				Params:          jsas.DefaultParams(),
				Profile:         Marketplace(),
				Duration:        24 * time.Hour,
				Seed:            40,
				OrganicFailures: true,
				Trace:           rec,
			},
			Runs:        4,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatalf("RunSeriesWith(parallelism=%d): %v", parallelism, err)
		}
		return series, rec.Spans()
	}
	s1, spans1 := run(1)
	for _, par := range []int{0, 2, 4} {
		sN, spansN := run(par)
		if !reflect.DeepEqual(s1, sN) {
			t.Fatalf("series result differs between parallelism 1 and %d", par)
		}
		if !reflect.DeepEqual(spans1, spansN) {
			t.Fatalf("merged trace differs between parallelism 1 and %d", par)
		}
	}
	// Per-run streams are tagged: 4 longevity roots, one per replica index.
	roots := map[int64]bool{}
	for _, sp := range spans1 {
		if sp.Name != trace.SpanLongevity {
			continue
		}
		a, ok := sp.Attr(trace.AttrReplica)
		if !ok {
			t.Fatalf("longevity root %d missing replica attr", sp.ID)
		}
		if !strings.HasPrefix(sp.AttrString(trace.AttrTrack), "r") {
			t.Errorf("longevity root track %q not replica-prefixed", sp.AttrString(trace.AttrTrack))
		}
		roots[a.Int] = true
	}
	if len(roots) != 4 {
		t.Fatalf("replica-tagged longevity roots = %d, want 4", len(roots))
	}
}

// TestRunSeriesWithPartialFailure: failing runs surface as a joined error
// without discarding the series result structure.
func TestRunSeriesWithPartialFailure(t *testing.T) {
	t.Parallel()
	series, err := RunSeriesWith(SeriesOptions{
		Run:         RunOptions{Profile: Profile{}}, // invalid: every run fails
		Runs:        3,
		Parallelism: 2,
	})
	if err == nil {
		t.Fatal("expected run failures")
	}
	if !errors.Is(err, ErrBadRun) {
		t.Fatalf("err = %v, want ErrBadRun in chain", err)
	}
	if series == nil {
		t.Fatal("partial series result discarded")
	}
	if len(series.Runs) != 0 || series.TotalExposure != 0 {
		t.Errorf("failed series pooled data: %+v", series)
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("err %T is not a joined error", err)
	}
	if got := len(joined.Unwrap()); got != 3 {
		t.Errorf("joined errors = %d, want 3", got)
	}
	for i, e := range joined.Unwrap() {
		want := []string{"run 1:", "run 2:", "run 3:"}[i]
		if !strings.Contains(e.Error(), want) {
			t.Errorf("error %d = %q, want it to name %q", i, e, want)
		}
	}
}
