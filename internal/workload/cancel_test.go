package workload

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/jsas"
)

// afterNCtx cancels after a fixed number of Err() calls — RunCtx checks
// once per simulation chunk, so this pins the cancellation to a chunk
// boundary deterministically.
type afterNCtx struct {
	context.Context
	calls, after int
}

func (c *afterNCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

func shortRunOptions(seed int64) RunOptions {
	return RunOptions{
		Config:   jsas.Config1,
		Params:   jsas.DefaultParams(),
		Profile:  Marketplace(),
		Duration: 6 * time.Hour,
		Seed:     seed,
	}
}

// TestRunCtxCanceledBeforeStart: a pre-canceled run does no simulation
// and returns no Result (a truncated exposure window would weaken the
// Equation (2) bound silently).
func TestRunCtxCanceledBeforeStart(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunCtx(ctx, shortRunOptions(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("canceled run returned a Result; want nil")
	}
}

// TestRunCtxCanceledMidRun: cancellation lands at a chunk boundary and
// the error reports how far the virtual clock got.
func TestRunCtxCanceledMidRun(t *testing.T) {
	t.Parallel()
	ctx := &afterNCtx{Context: context.Background(), after: 3}
	res, err := RunCtx(ctx, shortRunOptions(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("canceled run returned a Result; want nil")
	}
	if !strings.Contains(err.Error(), "canceled at") {
		t.Errorf("error %q does not report the virtual-clock position", err)
	}
}

// TestRunCtxLiveMatchesRun: the chunked advance introduced for
// cancellation must be invisible to the physics — same seed, same
// counts, with and without a live context.
func TestRunCtxLiveMatchesRun(t *testing.T) {
	t.Parallel()
	a, err := Run(shortRunOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCtx(context.Background(), shortRunOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.RequestsServed != b.RequestsServed || a.Availability != b.Availability ||
		a.ASInstanceFailures != b.ASInstanceFailures {
		t.Errorf("RunCtx(background) diverged from Run: %+v vs %+v", b, a)
	}
}

// TestRunSeriesWithCtxCanceled: a canceled series still pools its
// completed runs (the partial-series contract) and surfaces the
// cancellation.
func TestRunSeriesWithCtxCanceled(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSeriesWithCtx(ctx, SeriesOptions{
		Run:  shortRunOptions(1),
		Runs: 3,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
