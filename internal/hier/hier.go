// Package hier implements RAScad-style hierarchical model composition:
// a tree of Markov reward submodels in which each child is solved first and
// abstracted into an equivalent two-state (λ_eq, μ_eq) pair, which is then
// bound into the parent model's parameter environment under caller-chosen
// names (the `$Lambda1`/`$Mu1` convention in the paper's Figure 2).
package hier

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ctmc"
	"repro/internal/reward"
	"repro/internal/trace"
)

// Common errors.
var (
	// ErrCycle is reported when components form a dependency cycle.
	ErrCycle = errors.New("hier: dependency cycle")
	// ErrBadComponent is reported for structurally invalid components.
	ErrBadComponent = errors.New("hier: invalid component")
)

// Params is the parameter environment threaded through an evaluation.
// Child results are added under the binding names before the parent builds.
type Params map[string]float64

// Lookup implements expr.Env.
func (p Params) Lookup(name string) (float64, bool) {
	v, ok := p[name]
	return v, ok
}

// Clone returns an independent copy.
func (p Params) Clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// BuildFunc constructs a component's Markov reward structure from the
// current parameter environment.
type BuildFunc func(p Params) (*reward.Structure, error)

// Component is a node in the model hierarchy.
type Component struct {
	name     string
	build    BuildFunc
	children []binding
}

type binding struct {
	child       *Component
	lambdaParam string
	muParam     string
}

// NewComponent creates a hierarchy node with the given display name and
// model builder.
func NewComponent(name string, build BuildFunc) *Component {
	return &Component{name: name, build: build}
}

// Name returns the component's display name.
func (c *Component) Name() string { return c.name }

// Use declares that this component's model references the child's
// equivalent rates: before this component is built, child is evaluated and
// its λ_eq/μ_eq are bound into the parameter environment under lambdaParam
// and muParam.
func (c *Component) Use(child *Component, lambdaParam, muParam string) *Component {
	c.children = append(c.children, binding{child: child, lambdaParam: lambdaParam, muParam: muParam})
	return c
}

// Evaluation is the solved result tree for a component and its subtree.
type Evaluation struct {
	Name string
	// Result holds the solved measures of this component's own model.
	Result *reward.Result
	// Structure is the reward structure the component built, giving access
	// to the underlying model and its state names.
	Structure *reward.Structure
	// Children holds the evaluations of the subcomponents, in Use order.
	Children []*Evaluation
}

// Find returns the evaluation of the named (sub)component, or nil.
func (e *Evaluation) Find(name string) *Evaluation {
	if e == nil {
		return nil
	}
	if e.Name == name {
		return e
	}
	for _, c := range e.Children {
		if r := c.Find(name); r != nil {
			return r
		}
	}
	return nil
}

// Options configures an evaluation.
type Options struct {
	// Solve is threaded to every submodel solve. When Solve.Solver is nil,
	// Evaluate installs a fresh ctmc.Solver for the duration of the call so
	// the submodels of one hierarchy share scratch storage and warm starts;
	// callers running many evaluations (sweeps, Monte-Carlo workers) should
	// supply their own per-worker Solver to carry that reuse across calls.
	Solve ctmc.SolveOptions
}

// Evaluate solves the hierarchy rooted at c bottom-up: children first, each
// reduced to (λ_eq, μ_eq) and bound into a copy of params for the parent
// build. The input params map is not modified. It is EvaluateCtx with a
// background context.
func Evaluate(c *Component, params Params, opts Options) (*Evaluation, error) {
	return EvaluateCtx(context.Background(), c, params, opts)
}

// EvaluateCtx is Evaluate with cancellation: the context is checked
// before each component build and threaded into every submodel solve (via
// ctmc.SolveOptions.Ctx), so a canceled evaluation aborts within one
// component — or mid-solve, at the iterative solvers' check granularity —
// returning an error wrapping ctx.Err().
func EvaluateCtx(ctx context.Context, c *Component, params Params, opts Options) (*Evaluation, error) {
	if opts.Solve.Solver == nil {
		opts.Solve.Solver = ctmc.NewSolver()
	}
	if opts.Solve.Ctx == nil {
		opts.Solve.Ctx = ctx
	}
	name := "hierarchy"
	if c != nil {
		name = c.name
	}
	span := trace.Default().Start("hier.evaluate", nil,
		trace.String(trace.AttrTrack, "solver"),
		trace.String("root", name))
	ev, err := evaluate(ctx, c, params, opts, make(map[*Component]bool), span)
	span.Attr(trace.Bool("error", err != nil))
	span.End()
	return ev, err
}

func evaluate(ctx context.Context, c *Component, params Params, opts Options, visiting map[*Component]bool, parent *trace.Active) (*Evaluation, error) {
	if c == nil {
		return nil, fmt.Errorf("nil component: %w", ErrBadComponent)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("hier: evaluation canceled at %q: %w", c.name, err)
		}
	}
	if c.build == nil {
		return nil, fmt.Errorf("component %q has no build function: %w", c.name, ErrBadComponent)
	}
	if visiting[c] {
		return nil, fmt.Errorf("component %q: %w", c.name, ErrCycle)
	}
	visiting[c] = true
	defer delete(visiting, c)

	span := trace.Default().Start("hier.component", parent,
		trace.String(trace.AttrTrack, "solver"),
		trace.String("component", c.name))
	defer span.End()

	env := params.Clone()
	ev := &Evaluation{Name: c.name}
	for _, b := range c.children {
		childEv, err := evaluate(ctx, b.child, params, opts, visiting, span)
		if err != nil {
			return nil, err
		}
		ev.Children = append(ev.Children, childEv)
		if b.lambdaParam != "" {
			env[b.lambdaParam] = childEv.Result.LambdaEq
		}
		if b.muParam != "" {
			env[b.muParam] = childEv.Result.MuEq
		}
	}
	structure, err := c.build(env)
	if err != nil {
		return nil, fmt.Errorf("build %q: %w", c.name, err)
	}
	res, err := structure.Solve(opts.Solve)
	if err != nil {
		return nil, fmt.Errorf("solve %q: %w", c.name, err)
	}
	ev.Result = res
	ev.Structure = structure
	return ev, nil
}
