package hier

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ctmc"
	"repro/internal/reward"
)

// twoStateBuilder returns a BuildFunc for a repairable component whose
// failure/repair rates come from the named parameters.
func twoStateBuilder(lambdaParam, muParam string) BuildFunc {
	return func(p Params) (*reward.Structure, error) {
		lambda, ok := p[lambdaParam]
		if !ok {
			return nil, errors.New("missing " + lambdaParam)
		}
		mu, ok := p[muParam]
		if !ok {
			return nil, errors.New("missing " + muParam)
		}
		b := ctmc.NewBuilder()
		up := b.State("Up")
		down := b.State("Down")
		b.Transition(up, down, lambda)
		b.Transition(down, up, mu)
		m, err := b.Build()
		if err != nil {
			return nil, err
		}
		return reward.Binary(m, "Down")
	}
}

func TestEvaluateSingle(t *testing.T) {
	t.Parallel()
	c := NewComponent("leaf", twoStateBuilder("la", "mu"))
	ev, err := Evaluate(c, Params{"la": 0.01, "mu": 1}, Options{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	want := 1.0 / 1.01
	if math.Abs(ev.Result.Availability-want) > 1e-12 {
		t.Errorf("availability = %v, want %v", ev.Result.Availability, want)
	}
	if ev.Name != "leaf" {
		t.Errorf("Name = %q, want leaf", ev.Name)
	}
}

func TestEvaluateHierarchyBindsChildRates(t *testing.T) {
	t.Parallel()
	// Child: a pure two-state model. Parent: a two-state model whose rates
	// are exactly the child's equivalent rates. Then parent availability ==
	// child availability (two-state reduction is exact for two-state).
	child := NewComponent("child", twoStateBuilder("la", "mu"))
	parent := NewComponent("parent", twoStateBuilder("La_child", "Mu_child"))
	parent.Use(child, "La_child", "Mu_child")
	ev, err := Evaluate(parent, Params{"la": 0.004, "mu": 2.5}, Options{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(ev.Children) != 1 {
		t.Fatalf("children = %d, want 1", len(ev.Children))
	}
	childAvail := ev.Children[0].Result.Availability
	if math.Abs(ev.Result.Availability-childAvail) > 1e-12 {
		t.Errorf("parent availability %v != child %v", ev.Result.Availability, childAvail)
	}
}

func TestEvaluateDoesNotMutateParams(t *testing.T) {
	t.Parallel()
	child := NewComponent("child", twoStateBuilder("la", "mu"))
	parent := NewComponent("parent", twoStateBuilder("L", "M"))
	parent.Use(child, "L", "M")
	p := Params{"la": 0.1, "mu": 1}
	if _, err := Evaluate(parent, p, Options{}); err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if _, ok := p["L"]; ok {
		t.Error("Evaluate leaked child bindings into caller params")
	}
}

func TestEvaluateCycle(t *testing.T) {
	t.Parallel()
	a := NewComponent("a", twoStateBuilder("x", "y"))
	b := NewComponent("b", twoStateBuilder("x", "y"))
	a.Use(b, "x", "y")
	b.Use(a, "x", "y")
	if _, err := Evaluate(a, Params{"x": 1, "y": 1}, Options{}); !errors.Is(err, ErrCycle) {
		t.Errorf("err = %v, want ErrCycle", err)
	}
}

func TestEvaluateSharedChildIsNotACycle(t *testing.T) {
	t.Parallel()
	// Diamond: parent uses the same child twice under different names.
	child := NewComponent("child", twoStateBuilder("la", "mu"))
	parent := NewComponent("parent", func(p Params) (*reward.Structure, error) {
		b := ctmc.NewBuilder()
		ok := b.State("Ok")
		f1 := b.State("F1")
		f2 := b.State("F2")
		b.Transition(ok, f1, p["L1"])
		b.Transition(f1, ok, p["M1"])
		b.Transition(ok, f2, p["L2"])
		b.Transition(f2, ok, p["M2"])
		m, err := b.Build()
		if err != nil {
			return nil, err
		}
		return reward.Binary(m, "F1", "F2")
	})
	parent.Use(child, "L1", "M1")
	parent.Use(child, "L2", "M2")
	ev, err := Evaluate(parent, Params{"la": 0.01, "mu": 1}, Options{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(ev.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(ev.Children))
	}
}

func TestEvaluateErrors(t *testing.T) {
	t.Parallel()
	if _, err := Evaluate(nil, nil, Options{}); !errors.Is(err, ErrBadComponent) {
		t.Errorf("nil component: err = %v, want ErrBadComponent", err)
	}
	if _, err := Evaluate(NewComponent("x", nil), nil, Options{}); !errors.Is(err, ErrBadComponent) {
		t.Errorf("nil build: err = %v, want ErrBadComponent", err)
	}
	// Build failure propagates with component name.
	c := NewComponent("broken", twoStateBuilder("missing", "mu"))
	if _, err := Evaluate(c, Params{}, Options{}); err == nil {
		t.Error("expected build error")
	}
}

func TestFind(t *testing.T) {
	t.Parallel()
	child := NewComponent("child", twoStateBuilder("la", "mu"))
	parent := NewComponent("parent", twoStateBuilder("L", "M"))
	parent.Use(child, "L", "M")
	ev, err := Evaluate(parent, Params{"la": 0.1, "mu": 1}, Options{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if ev.Find("child") == nil {
		t.Error("Find(child) = nil")
	}
	if ev.Find("parent") != ev {
		t.Error("Find(parent) != root")
	}
	if ev.Find("nope") != nil {
		t.Error("Find(nope) != nil")
	}
	var nilEv *Evaluation
	if nilEv.Find("x") != nil {
		t.Error("nil receiver Find should return nil")
	}
}

func TestParamsClone(t *testing.T) {
	t.Parallel()
	p := Params{"a": 1}
	c := p.Clone()
	c["a"] = 2
	if p["a"] != 1 {
		t.Error("Clone shares storage")
	}
	if v, ok := p.Lookup("a"); !ok || v != 1 {
		t.Errorf("Lookup = %v,%v", v, ok)
	}
	if _, ok := p.Lookup("zz"); ok {
		t.Error("Lookup(zz) found")
	}
}

// TestProductTwoIndependentComponents: for two independent repairable
// components in series (system up iff both up), the flat product must give
// availability A1·A2 exactly.
func TestProductSeries(t *testing.T) {
	t.Parallel()
	mk := func(la, mu float64) *reward.Structure {
		b := ctmc.NewBuilder()
		up := b.State("Up")
		down := b.State("Down")
		b.Transition(up, down, la)
		b.Transition(down, up, mu)
		m, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		s, err := reward.Binary(m, "Down")
		if err != nil {
			t.Fatalf("Binary: %v", err)
		}
		return s
	}
	c1 := mk(0.01, 1)
	c2 := mk(0.02, 4)
	prod, err := Product([]*reward.Structure{c1, c2}, func(up []bool) bool {
		return up[0] && up[1]
	})
	if err != nil {
		t.Fatalf("Product: %v", err)
	}
	if prod.Model().NumStates() != 4 {
		t.Fatalf("product states = %d, want 4", prod.Model().NumStates())
	}
	res, err := prod.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	a1 := 1 / 1.01
	a2 := 4 / 4.02
	if math.Abs(res.Availability-a1*a2) > 1e-12 {
		t.Errorf("availability = %v, want %v", res.Availability, a1*a2)
	}
}

// TestProductParallel: system up iff at least one component up (1-out-of-2).
func TestProductParallel(t *testing.T) {
	t.Parallel()
	mk := func(la, mu float64) *reward.Structure {
		b := ctmc.NewBuilder()
		up := b.State("Up")
		down := b.State("Down")
		b.Transition(up, down, la)
		b.Transition(down, up, mu)
		m, _ := b.Build()
		s, err := reward.Binary(m, "Down")
		if err != nil {
			t.Fatalf("Binary: %v", err)
		}
		return s
	}
	c := mk(1, 2) // A = 2/3, U = 1/3
	prod, err := Product([]*reward.Structure{c, c}, func(up []bool) bool {
		return up[0] || up[1]
	})
	if err != nil {
		t.Fatalf("Product: %v", err)
	}
	res, err := prod.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := 1 - (1.0/3)*(1.0/3)
	if math.Abs(res.Availability-want) > 1e-12 {
		t.Errorf("availability = %v, want %v", res.Availability, want)
	}
}

func TestProductErrors(t *testing.T) {
	t.Parallel()
	if _, err := Product(nil, func([]bool) bool { return true }); !errors.Is(err, ErrBadComponent) {
		t.Errorf("empty: err = %v, want ErrBadComponent", err)
	}
	b := ctmc.NewBuilder()
	up := b.State("Up")
	down := b.State("Down")
	b.Transition(up, down, 1)
	b.Transition(down, up, 1)
	m, _ := b.Build()
	s, err := reward.Binary(m, "Down")
	if err != nil {
		t.Fatalf("Binary: %v", err)
	}
	if _, err := Product([]*reward.Structure{s}, nil); !errors.Is(err, ErrBadComponent) {
		t.Errorf("nil predicate: err = %v, want ErrBadComponent", err)
	}
}

// TestHierarchyVsFlatAccuracy quantifies the hierarchical abstraction error
// on a series system: for stiff repairable components the approximation is
// accurate to well below 1% relative on unavailability.
func TestHierarchyVsFlatAccuracy(t *testing.T) {
	t.Parallel()
	mk := twoStateBuilder("la", "mu")
	c1 := NewComponent("c1", mk)
	c2 := NewComponent("c2", mk)
	top := NewComponent("top", func(p Params) (*reward.Structure, error) {
		b := ctmc.NewBuilder()
		ok := b.State("Ok")
		f1 := b.State("F1")
		f2 := b.State("F2")
		b.Transition(ok, f1, p["L1"])
		b.Transition(f1, ok, p["M1"])
		b.Transition(ok, f2, p["L2"])
		b.Transition(f2, ok, p["M2"])
		m, err := b.Build()
		if err != nil {
			return nil, err
		}
		return reward.Binary(m, "F1", "F2")
	})
	top.Use(c1, "L1", "M1")
	top.Use(c2, "L2", "M2")
	params := Params{"la": 0.001, "mu": 2}
	ev, err := Evaluate(top, params, Options{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// Flat reference.
	leaf, err := mk(params)
	if err != nil {
		t.Fatalf("leaf: %v", err)
	}
	flat, err := Product([]*reward.Structure{leaf, leaf}, func(up []bool) bool {
		return up[0] && up[1]
	})
	if err != nil {
		t.Fatalf("Product: %v", err)
	}
	fres, err := flat.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	uHier := 1 - ev.Result.Availability
	uFlat := 1 - fres.Availability
	if uFlat == 0 {
		t.Fatal("flat unavailability is zero")
	}
	relErr := math.Abs(uHier-uFlat) / uFlat
	if relErr > 0.01 {
		t.Errorf("hierarchy error %.4f > 1%% (hier %g, flat %g)", relErr, uHier, uFlat)
	}
}

func TestComponentName(t *testing.T) {
	t.Parallel()
	c := NewComponent("my component", nil)
	if c.Name() != "my component" {
		t.Errorf("Name = %q", c.Name())
	}
}

// TestProductWithCommonCause: the shared mode is an independent two-state
// component AND-ed with the structure, so availability factorizes exactly
// as A_cc · A_structure.
func TestProductWithCommonCause(t *testing.T) {
	t.Parallel()
	mk := func(la, mu float64) *reward.Structure {
		b := ctmc.NewBuilder()
		up := b.State("Up")
		down := b.State("Down")
		b.Transition(up, down, la)
		b.Transition(down, up, mu)
		m, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		s, err := reward.Binary(m, "Down")
		if err != nil {
			t.Fatalf("Binary: %v", err)
		}
		return s
	}
	comps := []*reward.Structure{mk(0.01, 1), mk(0.02, 4)}
	oneOfTwo := func(up []bool) bool { return up[0] || up[1] }
	plain, err := Product(comps, oneOfTwo)
	if err != nil {
		t.Fatalf("Product: %v", err)
	}
	plainRes, err := plain.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve plain: %v", err)
	}
	const laCC, muCC = 0.005, 2.0
	cc, err := ProductWithCommonCause(comps, oneOfTwo, laCC, muCC)
	if err != nil {
		t.Fatalf("ProductWithCommonCause: %v", err)
	}
	if cc.Model().NumStates() != 8 {
		t.Fatalf("states = %d, want 8 (2·2·2)", cc.Model().NumStates())
	}
	res, err := cc.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	aCC := muCC / (laCC + muCC)
	want := aCC * plainRes.Availability
	if math.Abs(res.Availability-want) > 1e-12 {
		t.Errorf("availability = %v, want A_cc·A_structure = %v", res.Availability, want)
	}
}

func TestProductWithCommonCauseErrors(t *testing.T) {
	t.Parallel()
	b := ctmc.NewBuilder()
	up := b.State("Up")
	down := b.State("Down")
	b.Transition(up, down, 0.01)
	b.Transition(down, up, 1)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s, err := reward.Binary(m, "Down")
	if err != nil {
		t.Fatalf("Binary: %v", err)
	}
	comps := []*reward.Structure{s}
	pred := func(up []bool) bool { return up[0] }
	for name, rates := range map[string][2]float64{
		"zero-lambda":     {0, 1},
		"negative-lambda": {-1, 1},
		"zero-mu":         {0.1, 0},
		"negative-mu":     {0.1, -2},
	} {
		if _, err := ProductWithCommonCause(comps, pred, rates[0], rates[1]); !errors.Is(err, ErrBadComponent) {
			t.Errorf("%s: err = %v, want ErrBadComponent", name, err)
		}
	}
	if _, err := ProductWithCommonCause(comps, nil, 0.1, 1); !errors.Is(err, ErrBadComponent) {
		t.Errorf("nil predicate: err = %v, want ErrBadComponent", err)
	}
}
