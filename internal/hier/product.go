package hier

import (
	"fmt"
	"strings"

	"repro/internal/ctmc"
	"repro/internal/reward"
)

// MaxProductStates caps the flat cross-product state space Product will
// materialize. Beyond it the composite CTMC would exhaust memory before
// the solver ever ran; Product returns an ErrBadComponent-wrapped error
// instead (surfaced as a client error by the HTTP API), pointing callers
// at the Bayesian-network backend that handles large replication counts.
const MaxProductStates = 1_000_000

// Product composes independent Markov reward submodels into a single flat
// model on the cross-product state space. Each component evolves with its
// own transition rates (independence assumption); the composite state is up
// when the predicate up(componentUp) holds, where componentUp[i] reports
// whether component i is in a nonzero-reward state.
//
// This is the exact "flat" alternative to the hierarchical (λ_eq, μ_eq)
// abstraction and is used to quantify the hierarchy's approximation error.
// The state space grows as the product of component sizes; callers should
// keep the composite below a few hundred thousand states.
func Product(components []*reward.Structure, up func(componentUp []bool) bool) (*reward.Structure, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("no components: %w", ErrBadComponent)
	}
	if up == nil {
		return nil, fmt.Errorf("nil up predicate: %w", ErrBadComponent)
	}
	sizes := make([]int, len(components))
	total := 1
	for i, c := range components {
		sizes[i] = c.Model().NumStates()
		if sizes[i] == 0 {
			return nil, fmt.Errorf("component %d has no states: %w", i, ErrBadComponent)
		}
		if total > MaxProductStates/sizes[i] {
			return nil, fmt.Errorf("product state space exceeds %d states (use the bayes backend for large replication): %w",
				MaxProductStates, ErrBadComponent)
		}
		total *= sizes[i]
	}
	b := ctmc.NewBuilder()
	// State naming: "s0|s1|...|sk" by component state names.
	names := make([]string, total)
	statesOf := make([][]ctmc.State, len(components))
	for i, c := range components {
		statesOf[i] = c.Model().States()
	}
	idx := make([]int, len(components))
	compose := func(idx []int) string {
		parts := make([]string, len(idx))
		for i, si := range idx {
			parts[i] = components[i].Model().Name(ctmc.State(si))
		}
		return strings.Join(parts, "|")
	}
	for flat := 0; flat < total; flat++ {
		names[flat] = compose(idx)
		b.State(names[flat])
		increment(idx, sizes)
	}
	// Transitions: component i moving s→t maps every composite state with
	// component i at s to the same composite with component i at t.
	strides := make([]int, len(components))
	stride := 1
	for i := len(components) - 1; i >= 0; i-- {
		strides[i] = stride
		stride *= sizes[i]
	}
	for i, c := range components {
		for _, tr := range c.Model().Transitions() {
			// Iterate all composite states with component i in tr.From.
			forEachComposite(sizes, i, int(tr.From), func(flat int) {
				to := flat + (int(tr.To)-int(tr.From))*strides[i]
				b.Transition(ctmc.State(flat), ctmc.State(to), tr.Rate)
			})
		}
	}
	model, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("product build: %w", err)
	}
	// Rewards: decode each flat index, ask the predicate.
	rates := make([]float64, total)
	decode := make([]int, len(components))
	compUp := make([]bool, len(components))
	for flat := 0; flat < total; flat++ {
		rem := flat
		for i := range components {
			decode[i] = rem / strides[i]
			rem %= strides[i]
			compUp[i] = components[i].Rate(ctmc.State(decode[i])) > 0
		}
		if up(compUp) {
			rates[flat] = 1
		}
	}
	return reward.New(model, rates)
}

// ProductWithCommonCause composes components like Product and adds a
// beta-factor common-cause mode: an independent two-state failure process
// (failure rate lambdaCC, repair rate muCC) that takes the composite down
// regardless of the component states. The composite is up iff the
// common-cause process is up AND the predicate holds.
//
// Because the common-cause process is independent of every component, the
// steady-state availability factorizes exactly as A_cc · A_structure —
// the same composition the bayes backend expresses as a noisy-OR failure
// gate with leak 1−A_cc over the structure root — so the two backends
// agree to solver precision, not just to first order.
func ProductWithCommonCause(components []*reward.Structure, up func(componentUp []bool) bool, lambdaCC, muCC float64) (*reward.Structure, error) {
	if !(lambdaCC > 0) || !(muCC > 0) {
		return nil, fmt.Errorf("common-cause rates lambda=%g, mu=%g must be positive: %w", lambdaCC, muCC, ErrBadComponent)
	}
	if up == nil {
		return nil, fmt.Errorf("nil up predicate: %w", ErrBadComponent)
	}
	b := ctmc.NewBuilder()
	ccUp := b.State("CC:Up")
	ccDown := b.State("CC:Down")
	b.Transition(ccUp, ccDown, lambdaCC)
	b.Transition(ccDown, ccUp, muCC)
	m, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("common-cause component: %w", err)
	}
	cc, err := reward.New(m, []float64{1, 0})
	if err != nil {
		return nil, fmt.Errorf("common-cause component: %w", err)
	}
	all := make([]*reward.Structure, 0, len(components)+1)
	all = append(all, components...)
	all = append(all, cc)
	n := len(components)
	return Product(all, func(componentUp []bool) bool {
		return componentUp[n] && up(componentUp[:n])
	})
}

// increment advances a mixed-radix counter (most significant digit first).
func increment(idx, sizes []int) {
	for i := len(idx) - 1; i >= 0; i-- {
		idx[i]++
		if idx[i] < sizes[i] {
			return
		}
		idx[i] = 0
	}
}

// forEachComposite visits every flat composite index whose component comp
// is fixed at state fixed.
func forEachComposite(sizes []int, comp, fixed int, fn func(flat int)) {
	idx := make([]int, len(sizes))
	idx[comp] = fixed
	for {
		// Mixed-radix flat index, most significant digit first.
		flat := 0
		for i := 0; i < len(sizes); i++ {
			flat = flat*sizes[i] + idx[i]
		}
		fn(flat)
		// Advance all digits except comp.
		i := len(idx) - 1
		for i >= 0 {
			if i == comp {
				i--
				continue
			}
			idx[i]++
			if idx[i] < sizes[i] {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}
