package hier

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestEvaluateCtxCanceled: a canceled evaluation aborts before building
// and names the component it stopped at.
func TestEvaluateCtxCanceled(t *testing.T) {
	t.Parallel()
	child := NewComponent("child", twoStateBuilder("la", "mu"))
	parent := NewComponent("parent", twoStateBuilder("cla", "mu")).Use(child, "cla", "")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EvaluateCtx(ctx, parent, Params{"la": 0.01, "mu": 1}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "canceled at") {
		t.Errorf("error %q does not name the component", err)
	}
}

// TestEvaluateCtxLiveMatchesEvaluate: a live context yields the same
// result tree as the background-context API.
func TestEvaluateCtxLiveMatchesEvaluate(t *testing.T) {
	t.Parallel()
	build := func() *Component {
		child := NewComponent("child", twoStateBuilder("la", "mu"))
		return NewComponent("parent", twoStateBuilder("cla", "mu")).Use(child, "cla", "")
	}
	params := Params{"la": 0.01, "mu": 1}
	a, err := Evaluate(build(), params, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateCtx(context.Background(), build(), params, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Availability != b.Result.Availability {
		t.Errorf("availability diverged: %v vs %v", b.Result.Availability, a.Result.Availability)
	}
}
