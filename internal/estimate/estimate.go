// Package estimate turns raw measurement data into the conservative model
// parameters the paper plugs into its Markov models: failure-rate upper
// bounds from test exposure (Equation 2), coverage/FIR bounds from fault
// injection campaigns (Equation 1), and recovery-time summaries.
package estimate

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/stats"
)

// ErrBadData is reported for inconsistent measurement inputs.
var ErrBadData = errors.New("estimate: invalid measurement data")

// FailureRateBound is a one-sided upper confidence bound on a failure rate.
type FailureRateBound struct {
	Confidence float64
	// PerHour is the bound expressed per hour (model time unit).
	PerHour float64
	// PerYear is the bound expressed per year (the paper's quoting unit).
	PerYear float64
	// MTTFHours is the corresponding lower bound on mean time to failure.
	MTTFHours float64
}

// FailureRateUpperBound applies the paper's Equation (2):
// λ_max = χ²_{conf; 2n+2} / (2T), with T the total exposure across all
// units under test and n the observed failure count.
func FailureRateUpperBound(exposure time.Duration, failures int, confidence float64) (FailureRateBound, error) {
	hours := exposure.Hours()
	if hours <= 0 {
		return FailureRateBound{}, fmt.Errorf("non-positive exposure %v: %w", exposure, ErrBadData)
	}
	perHour, err := stats.PoissonRateUpperBound(hours, failures, confidence)
	if err != nil {
		return FailureRateBound{}, fmt.Errorf("failure rate bound: %w", err)
	}
	b := FailureRateBound{
		Confidence: confidence,
		PerHour:    perHour,
		PerYear:    perHour * 8760,
	}
	if perHour > 0 {
		b.MTTFHours = 1 / perHour
	}
	return b, nil
}

// CoverageBound is a one-sided lower confidence bound on recovery coverage
// C = 1 − FIR.
type CoverageBound struct {
	Confidence float64
	// Coverage is the lower bound on the success probability C.
	Coverage float64
	// FIR is the matching upper bound on the fraction of imperfect
	// recovery, 1 − Coverage.
	FIR float64
}

// CoverageLowerBound applies the paper's Equation (1): given a fault
// injection campaign with trials injections and successes successful
// recoveries, it bounds the coverage from below (equivalently FIR from
// above) at the stated confidence.
func CoverageLowerBound(trials, successes int, confidence float64) (CoverageBound, error) {
	c, err := stats.BinomialLowerBound(trials, successes, confidence)
	if err != nil {
		return CoverageBound{}, fmt.Errorf("coverage bound: %w", err)
	}
	return CoverageBound{Confidence: confidence, Coverage: c, FIR: 1 - c}, nil
}

// RecoveryTimes summarizes a sample of measured recovery/restart durations
// and produces the conservative point estimate the paper's methodology
// prescribes: a high percentile (default 100th = max observed), optionally
// inflated by a safety factor, rounded up to whole seconds.
type RecoveryTimes struct {
	Samples []time.Duration
}

// Summary reports descriptive statistics of the sample in seconds.
func (r RecoveryTimes) Summary() stats.Summary {
	xs := make([]float64, len(r.Samples))
	for i, d := range r.Samples {
		xs[i] = d.Seconds()
	}
	return stats.Summarize(xs)
}

// Conservative returns a conservative duration estimate: the p-th
// percentile of the sample scaled by factor (≥ 1). The paper uses e.g. the
// measured ~40 s HADB restart rounded up to 1 min (p=100, factor≈1.5).
func (r RecoveryTimes) Conservative(percentile, factor float64) (time.Duration, error) {
	if len(r.Samples) == 0 {
		return 0, fmt.Errorf("no recovery time samples: %w", ErrBadData)
	}
	if factor < 1 {
		return 0, fmt.Errorf("safety factor %g < 1: %w", factor, ErrBadData)
	}
	xs := make([]float64, len(r.Samples))
	for i, d := range r.Samples {
		xs[i] = d.Seconds()
	}
	v := stats.Percentile(xs, percentile) * factor
	return time.Duration(v * float64(time.Second)), nil
}

// ExponentialFit is the result of fitting an exponential distribution to
// inter-failure times and testing the fit.
type ExponentialFit struct {
	// RatePerHour is the maximum-likelihood failure rate (1/mean).
	RatePerHour float64
	// MTBFHours is the fitted mean time between failures.
	MTBFHours float64
	// KSPValue is the Kolmogorov–Smirnov goodness-of-fit p-value against
	// the fitted exponential; small values reject the §4 constant-rate
	// assumption.
	KSPValue float64
	// N is the sample size.
	N int
}

// FitExponential fits the paper's constant-failure-rate assumption to a
// sample of inter-failure durations and tests it: the MLE rate is n/Σt,
// and the KS test checks the exponential shape. At least two samples are
// required.
func FitExponential(interFailure []time.Duration) (ExponentialFit, error) {
	if len(interFailure) < 2 {
		return ExponentialFit{}, fmt.Errorf("need ≥ 2 inter-failure samples, got %d: %w",
			len(interFailure), ErrBadData)
	}
	xs := make([]float64, len(interFailure))
	var sum float64
	for i, d := range interFailure {
		h := d.Hours()
		if h <= 0 {
			return ExponentialFit{}, fmt.Errorf("non-positive inter-failure time %v: %w", d, ErrBadData)
		}
		xs[i] = h
		sum += h
	}
	mean := sum / float64(len(xs))
	ks, err := stats.KolmogorovSmirnov(xs, stats.ExponentialCDF(mean))
	if err != nil {
		return ExponentialFit{}, fmt.Errorf("exponential fit: %w", err)
	}
	return ExponentialFit{
		RatePerHour: 1 / mean,
		MTBFHours:   mean,
		KSPValue:    ks.PValue,
		N:           len(xs),
	}, nil
}
