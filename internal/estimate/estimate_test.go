package estimate

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestFailureRateUpperBoundPaperValues(t *testing.T) {
	t.Parallel()
	// Paper §5: 24-day zero-failure test over 2 AS instances → 48
	// instance-days; λ ≤ 1/16 per day at 95%, 1/9 per day at 99.5%.
	exposure := 48 * 24 * time.Hour
	b95, err := FailureRateUpperBound(exposure, 0, 0.95)
	if err != nil {
		t.Fatalf("FailureRateUpperBound: %v", err)
	}
	perDay := b95.PerHour * 24
	if math.Abs(1/perDay-16) > 0.1 {
		t.Errorf("95%% bound = 1/%.2f per day, want ~1/16", 1/perDay)
	}
	b995, err := FailureRateUpperBound(exposure, 0, 0.995)
	if err != nil {
		t.Fatalf("FailureRateUpperBound: %v", err)
	}
	perDay995 := b995.PerHour * 24
	if math.Abs(1/perDay995-9) > 0.1 {
		t.Errorf("99.5%% bound = 1/%.2f per day, want ~1/9", 1/perDay995)
	}
	// Unit consistency.
	if math.Abs(b95.PerYear-b95.PerHour*8760) > 1e-12 {
		t.Error("PerYear inconsistent with PerHour")
	}
	if math.Abs(b95.MTTFHours-1/b95.PerHour) > 1e-9 {
		t.Error("MTTFHours inconsistent")
	}
}

func TestFailureRateUpperBoundErrors(t *testing.T) {
	t.Parallel()
	if _, err := FailureRateUpperBound(0, 0, 0.95); !errors.Is(err, ErrBadData) {
		t.Errorf("zero exposure: err = %v, want ErrBadData", err)
	}
	if _, err := FailureRateUpperBound(time.Hour, -1, 0.95); err == nil {
		t.Error("negative failures should error")
	}
	if _, err := FailureRateUpperBound(time.Hour, 0, 0); err == nil {
		t.Error("confidence 0 should error")
	}
}

func TestCoverageLowerBoundPaperValues(t *testing.T) {
	t.Parallel()
	// Paper §5: 3287 injections, all recovered → FIR < 0.1% at 95%,
	// < 0.2% at 99.5%.
	b95, err := CoverageLowerBound(3287, 3287, 0.95)
	if err != nil {
		t.Fatalf("CoverageLowerBound: %v", err)
	}
	if b95.FIR > 0.001 {
		t.Errorf("FIR at 95%% = %v, want < 0.001", b95.FIR)
	}
	b995, err := CoverageLowerBound(3287, 3287, 0.995)
	if err != nil {
		t.Fatalf("CoverageLowerBound: %v", err)
	}
	if b995.FIR > 0.002 {
		t.Errorf("FIR at 99.5%% = %v, want < 0.002", b995.FIR)
	}
	if b995.FIR <= b95.FIR {
		t.Error("higher confidence must give larger FIR bound")
	}
	if math.Abs(b95.Coverage+b95.FIR-1) > 1e-15 {
		t.Error("Coverage + FIR != 1")
	}
}

func TestCoverageLowerBoundWithFailures(t *testing.T) {
	t.Parallel()
	withFail, err := CoverageLowerBound(1000, 998, 0.95)
	if err != nil {
		t.Fatalf("CoverageLowerBound: %v", err)
	}
	noFail, err := CoverageLowerBound(1000, 1000, 0.95)
	if err != nil {
		t.Fatalf("CoverageLowerBound: %v", err)
	}
	if withFail.Coverage >= noFail.Coverage {
		t.Errorf("failures should lower the coverage bound: %v vs %v", withFail.Coverage, noFail.Coverage)
	}
	if _, err := CoverageLowerBound(0, 0, 0.95); err == nil {
		t.Error("zero trials should error")
	}
}

func TestRecoveryTimesSummary(t *testing.T) {
	t.Parallel()
	r := RecoveryTimes{Samples: []time.Duration{
		30 * time.Second, 40 * time.Second, 35 * time.Second, 45 * time.Second,
	}}
	s := r.Summary()
	if s.N != 4 {
		t.Errorf("N = %d", s.N)
	}
	if math.Abs(s.Mean-37.5) > 1e-12 {
		t.Errorf("Mean = %v, want 37.5", s.Mean)
	}
	if s.Max != 45 {
		t.Errorf("Max = %v, want 45", s.Max)
	}
}

func TestRecoveryTimesConservative(t *testing.T) {
	t.Parallel()
	// The paper's HADB restart: measured ~40 s, modeled as 1 min.
	r := RecoveryTimes{Samples: []time.Duration{
		38 * time.Second, 40 * time.Second, 41 * time.Second,
	}}
	d, err := r.Conservative(100, 1.5)
	if err != nil {
		t.Fatalf("Conservative: %v", err)
	}
	if d < 60*time.Second || d > 62*time.Second {
		t.Errorf("Conservative = %v, want ~61.5s", d)
	}
	if _, err := (RecoveryTimes{}).Conservative(100, 1); !errors.Is(err, ErrBadData) {
		t.Errorf("empty: err = %v, want ErrBadData", err)
	}
	if _, err := r.Conservative(100, 0.5); !errors.Is(err, ErrBadData) {
		t.Errorf("factor<1: err = %v, want ErrBadData", err)
	}
}

func TestFitExponentialRecoversRate(t *testing.T) {
	t.Parallel()
	// Synthesize exponential inter-failure times at 52/yr ≈ 1/168h.
	r := rand.New(rand.NewSource(3))
	const mttf = 168.0
	samples := make([]time.Duration, 500)
	for i := range samples {
		samples[i] = time.Duration(r.ExpFloat64() * mttf * float64(time.Hour))
	}
	fit, err := FitExponential(samples)
	if err != nil {
		t.Fatalf("FitExponential: %v", err)
	}
	if math.Abs(fit.MTBFHours-mttf) > 0.15*mttf {
		t.Errorf("MTBF = %.1f h, want ~%.0f", fit.MTBFHours, mttf)
	}
	if fit.KSPValue < 0.01 {
		t.Errorf("KS p = %v, exponential sample rejected", fit.KSPValue)
	}
	if fit.N != 500 {
		t.Errorf("N = %d", fit.N)
	}
}

func TestFitExponentialRejectsDeterministic(t *testing.T) {
	t.Parallel()
	// Constant inter-failure times are decisively not exponential.
	samples := make([]time.Duration, 300)
	for i := range samples {
		samples[i] = 100 * time.Hour
	}
	fit, err := FitExponential(samples)
	if err != nil {
		t.Fatalf("FitExponential: %v", err)
	}
	if fit.KSPValue > 1e-6 {
		t.Errorf("KS p = %v, deterministic sample should be rejected", fit.KSPValue)
	}
}

func TestFitExponentialValidation(t *testing.T) {
	t.Parallel()
	if _, err := FitExponential(nil); !errors.Is(err, ErrBadData) {
		t.Errorf("empty: err = %v", err)
	}
	if _, err := FitExponential([]time.Duration{time.Hour, 0}); !errors.Is(err, ErrBadData) {
		t.Errorf("zero sample: err = %v", err)
	}
}
