package progress

import (
	"sort"
	"sync"
	"time"
)

// Run is one tracked unit of server work: an in-flight (or recently
// finished) request with its own Tracker. Runs are registered by the
// HTTP handlers so GET /v1/runs can report what the server is doing
// right now — the per-run progress state the async job engine will
// build on.
type Run struct {
	ID      int64
	Kind    string // e.g. "uncertainty", "sweep"
	Detail  string // free-form request summary, e.g. "config=1 samples=20000"
	Started time.Time
	tracker *Tracker

	mu       sync.Mutex
	finished bool
	ended    time.Time
	err      string
}

// Tracker returns the run's tracker for driver wiring (never nil).
func (r *Run) Tracker() *Tracker { return r.tracker }

// Finish marks the run complete. err may be nil; the first call wins.
func (r *Run) Finish(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished {
		return
	}
	r.finished = true
	r.ended = r.tracker.clock()
	if err != nil {
		r.err = err.Error()
	}
}

// RunStatus is the JSON-friendly snapshot of one run.
type RunStatus struct {
	ID        int64   `json:"id"`
	Kind      string  `json:"kind"`
	Detail    string  `json:"detail,omitempty"`
	State     string  `json:"state"` // "running" | "done" | "error"
	StartedAt string  `json:"startedAt"`
	EndedAt   string  `json:"endedAt,omitempty"`
	Error     string  `json:"error,omitempty"`
	Completed int64   `json:"completed"`
	Total     int64   `json:"total,omitempty"`
	Fraction  float64 `json:"fraction"`
	Rate      float64 `json:"ratePerSec,omitempty"`
	ETASec    float64 `json:"etaSeconds,omitempty"`
	Unit      string  `json:"unit,omitempty"`
	StatName  string  `json:"statName,omitempty"`
	StatMean  float64 `json:"statMean,omitempty"`
	StatHW    float64 `json:"statHalfWidth,omitempty"`
	StatN     int64   `json:"statN,omitempty"`
}

// Status snapshots the run.
func (r *Run) Status() RunStatus {
	snap := r.tracker.Snapshot()
	st := RunStatus{
		ID:        r.ID,
		Kind:      r.Kind,
		Detail:    r.Detail,
		StartedAt: r.Started.UTC().Format(time.RFC3339Nano),
		Completed: snap.Completed,
		Total:     snap.Total,
		Fraction:  snap.Fraction(),
		Rate:      snap.Rate,
		Unit:      snap.Unit,
		StatName:  snap.StatName,
		StatMean:  snap.StatMean,
		StatHW:    snap.StatHalfWidth,
		StatN:     snap.StatN,
	}
	if snap.ETAKnown {
		st.ETASec = snap.ETA.Seconds()
	}
	r.mu.Lock()
	if r.finished {
		st.EndedAt = r.ended.UTC().Format(time.RFC3339Nano)
		if r.err != "" {
			st.State = "error"
			st.Error = r.err
		} else {
			st.State = "done"
		}
	} else {
		st.State = "running"
	}
	r.mu.Unlock()
	return st
}

// Registry tracks live and recently-completed runs with bounded
// retention: finished runs beyond keepDone are evicted oldest-first, so
// a long-lived server cannot accumulate unbounded history.
type Registry struct {
	mu       sync.Mutex
	nextID   int64
	runs     map[int64]*Run
	keepDone int
	clock    func() time.Time
}

// defaultKeepDone bounds completed-run retention in a registry.
const defaultKeepDone = 32

// NewRegistry constructs a run registry retaining at most keepDone
// finished runs (0 or negative selects the default of 32).
func NewRegistry(keepDone int) *Registry {
	if keepDone <= 0 {
		keepDone = defaultKeepDone
	}
	return &Registry{runs: make(map[int64]*Run), keepDone: keepDone, clock: time.Now}
}

// SetClock substitutes the registry (and new trackers') time source; tests.
func (g *Registry) SetClock(clock func() time.Time) {
	g.mu.Lock()
	g.clock = clock
	g.mu.Unlock()
}

// Begin registers a new run with a fresh tracker expecting total tasks.
// Tracker options (WithStat, WithUnit) apply to the run's tracker.
func (g *Registry) Begin(kind, detail string, total int64, opts ...Option) *Run {
	g.mu.Lock()
	g.nextID++
	id := g.nextID
	clock := g.clock
	g.mu.Unlock()

	opts = append(opts, WithClock(clock))
	run := &Run{
		ID:      id,
		Kind:    kind,
		Detail:  detail,
		Started: clock(),
		tracker: New(total, opts...),
	}

	g.mu.Lock()
	g.runs[id] = run
	g.evictLocked()
	g.mu.Unlock()
	return run
}

// evictLocked drops the oldest finished runs beyond the retention cap.
func (g *Registry) evictLocked() {
	var done []*Run
	for _, r := range g.runs {
		r.mu.Lock()
		fin := r.finished
		r.mu.Unlock()
		if fin {
			done = append(done, r)
		}
	}
	if len(done) <= g.keepDone {
		return
	}
	sort.Slice(done, func(i, j int) bool { return done[i].ID < done[j].ID })
	for _, r := range done[:len(done)-g.keepDone] {
		delete(g.runs, r.ID)
	}
}

// Statuses snapshots every retained run, newest first, evicting stale
// finished runs as a side effect.
func (g *Registry) Statuses() []RunStatus {
	g.mu.Lock()
	g.evictLocked()
	runs := make([]*Run, 0, len(g.runs))
	for _, r := range g.runs {
		runs = append(runs, r)
	}
	g.mu.Unlock()

	sort.Slice(runs, func(i, j int) bool { return runs[i].ID > runs[j].ID })
	out := make([]RunStatus, len(runs))
	for i, r := range runs {
		out[i] = r.Status()
	}
	return out
}
