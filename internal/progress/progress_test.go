package progress

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable time source for deterministic snapshots.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestNilTrackerIsNoOp(t *testing.T) {
	var tr *Tracker
	tr.Done()
	tr.Add(5)
	tr.Observe(1.0)
	tr.SetTotal(10)
	if got := tr.Completed(); got != 0 {
		t.Fatalf("nil Completed = %d, want 0", got)
	}
	if got := tr.Total(); got != 0 {
		t.Fatalf("nil Total = %d, want 0", got)
	}
	snap := tr.Snapshot()
	if snap != (Snapshot{}) {
		t.Fatalf("nil Snapshot = %+v, want zero", snap)
	}
}

func TestTrackerCountsAndFraction(t *testing.T) {
	clock := newFakeClock()
	tr := New(100, WithClock(clock.Now), WithUnit("inj"))
	for i := 0; i < 25; i++ {
		tr.Done()
	}
	tr.Add(25)
	clock.Advance(time.Second)
	snap := tr.Snapshot()
	if snap.Completed != 50 || snap.Total != 100 {
		t.Fatalf("got %d/%d, want 50/100", snap.Completed, snap.Total)
	}
	if snap.Fraction() != 0.5 {
		t.Fatalf("Fraction = %v, want 0.5", snap.Fraction())
	}
	if snap.Unit != "inj" {
		t.Fatalf("Unit = %q, want inj", snap.Unit)
	}
}

func TestTrackerRateAndETA(t *testing.T) {
	clock := newFakeClock()
	tr := New(100, WithClock(clock.Now))
	tr.Add(10)
	clock.Advance(time.Second)
	snap := tr.Snapshot()
	if math.Abs(snap.Rate-10) > 1e-9 {
		t.Fatalf("Rate = %v, want 10/s", snap.Rate)
	}
	if !snap.ETAKnown {
		t.Fatal("ETA should be known with total and rate set")
	}
	if got, want := snap.ETA, 9*time.Second; got != want {
		t.Fatalf("ETA = %v, want %v", got, want)
	}

	// Second interval at a different pace: EWMA blends 10/s and 30/s.
	tr.Add(30)
	clock.Advance(time.Second)
	snap = tr.Snapshot()
	want := ewmaAlpha*30 + (1-ewmaAlpha)*10
	if math.Abs(snap.Rate-want) > 1e-9 {
		t.Fatalf("EWMA rate = %v, want %v", snap.Rate, want)
	}

	// Completion pins ETA to zero.
	tr.Add(60)
	clock.Advance(time.Second)
	snap = tr.Snapshot()
	if !snap.ETAKnown || snap.ETA != 0 {
		t.Fatalf("completed run ETA = %v (known=%v), want 0 known", snap.ETA, snap.ETAKnown)
	}
}

func TestSnapshotDecaysRateOnStall(t *testing.T) {
	clock := newFakeClock()
	tr := New(1000, WithClock(clock.Now))
	tr.Add(500)
	clock.Advance(time.Second)
	healthy := tr.Snapshot()
	if math.Abs(healthy.Rate-500) > 1e-9 {
		t.Fatalf("healthy rate = %v, want 500/s", healthy.Rate)
	}
	if healthy.ETA != 1*time.Second {
		t.Fatalf("healthy ETA = %v, want 1s", healthy.ETA)
	}

	// Stall. Pre-fix, every snapshot from here on reported 500/s and a
	// frozen 1s ETA forever; the decay must cap the rate at what the
	// widening idle gap supports (stallDecayEvents/gap) so the ETA grows.
	clock.Advance(2 * time.Second)
	s1 := tr.Snapshot()
	if want := stallDecayEvents / 2.0; math.Abs(s1.Rate-want) > 1e-9 {
		t.Fatalf("rate after 2s stall = %v, want %v", s1.Rate, want)
	}
	if !s1.ETAKnown || s1.ETA <= healthy.ETA {
		t.Fatalf("ETA after 2s stall = %v (known=%v), want growth past %v",
			s1.ETA, s1.ETAKnown, healthy.ETA)
	}
	clock.Advance(8 * time.Second)
	s2 := tr.Snapshot()
	if want := stallDecayEvents / 10.0; math.Abs(s2.Rate-want) > 1e-9 {
		t.Fatalf("rate after 10s stall = %v, want %v", s2.Rate, want)
	}
	if s2.ETA <= s1.ETA {
		t.Fatalf("ETA stopped growing during stall: %v then %v", s1.ETA, s2.ETA)
	}

	// A short idle gap must NOT decay: the cap only bites once the gap
	// exceeds stallDecayEvents expected inter-completion times, so rapid
	// status polls leave a healthy rate alone.
	tr2 := New(1000, WithClock(clock.Now))
	tr2.Add(500)
	clock.Advance(time.Second)
	before := tr2.Snapshot().Rate
	clock.Advance(time.Millisecond)
	if after := tr2.Snapshot().Rate; after != before {
		t.Fatalf("1ms idle poll moved the rate: %v -> %v", before, after)
	}

	// Recovery: completions resume and the EWMA climbs back up from the
	// decayed value instead of staying stuck near zero.
	tr.Add(100)
	clock.Advance(time.Second)
	s3 := tr.Snapshot()
	if s3.Rate <= s2.Rate {
		t.Fatalf("rate did not recover after stall: %v then %v", s2.Rate, s3.Rate)
	}
}

func TestTrackerUnknownTotalHasNoETA(t *testing.T) {
	clock := newFakeClock()
	tr := New(0, WithClock(clock.Now))
	tr.Add(10)
	clock.Advance(time.Second)
	snap := tr.Snapshot()
	if snap.ETAKnown {
		t.Fatal("ETA should be unknown without a total")
	}
	if snap.Rate == 0 {
		t.Fatal("rate should still be estimated without a total")
	}
}

func TestTrackerRunningStat(t *testing.T) {
	clock := newFakeClock()
	tr := New(4, WithClock(clock.Now), WithStat("recovered"))
	vals := []float64{1, 1, 0, 1}
	for _, v := range vals {
		tr.Done()
		tr.Observe(v)
	}
	clock.Advance(time.Second)
	snap := tr.Snapshot()
	if snap.StatName != "recovered" || snap.StatN != 4 {
		t.Fatalf("stat name/n = %q/%d, want recovered/4", snap.StatName, snap.StatN)
	}
	if math.Abs(snap.StatMean-0.75) > 1e-12 {
		t.Fatalf("StatMean = %v, want 0.75", snap.StatMean)
	}
	// Sample variance of {1,1,0,1} is 0.25; half-width = z95*sqrt(0.25/4).
	wantHW := z95 * math.Sqrt(0.25/4)
	if math.Abs(snap.StatHalfWidth-wantHW) > 1e-12 {
		t.Fatalf("StatHalfWidth = %v, want %v", snap.StatHalfWidth, wantHW)
	}
}

func TestTrackerStatWithoutNameOmitted(t *testing.T) {
	tr := New(1)
	tr.Observe(42)
	snap := tr.Snapshot()
	if snap.StatName != "" || snap.StatN != 0 {
		t.Fatalf("unnamed stat leaked into snapshot: %+v", snap)
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := New(0, WithStat("x"))
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Done()
				tr.Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := tr.Completed(); got != workers*per {
		t.Fatalf("Completed = %d, want %d", got, workers*per)
	}
	snap := tr.Snapshot()
	if snap.StatN != workers*per {
		t.Fatalf("StatN = %d, want %d", snap.StatN, workers*per)
	}
	if math.Abs(snap.StatMean-1) > 1e-12 {
		t.Fatalf("StatMean = %v, want 1", snap.StatMean)
	}
}

func TestSnapshotString(t *testing.T) {
	clock := newFakeClock()
	tr := New(200, WithClock(clock.Now), WithUnit("inj"), WithStat("recovered"))
	tr.Add(100)
	tr.Observe(1)
	tr.Observe(1)
	clock.Advance(time.Second)
	s := tr.Snapshot().String()
	for _, want := range []string{"100/200", "(50.0%)", "100.0 inj/s", "ETA 1s", "recovered=1.000000"} {
		if !strings.Contains(s, want) {
			t.Fatalf("status line %q missing %q", s, want)
		}
	}

	// Unknown total renders the bare count.
	tr2 := New(0, WithClock(clock.Now))
	tr2.Add(7)
	s2 := tr2.Snapshot().String()
	if !strings.HasPrefix(s2, "7") || strings.Contains(s2, "ETA") {
		t.Fatalf("unknown-total line = %q", s2)
	}
}

func TestReporterEmitsFinalLine(t *testing.T) {
	var buf bytes.Buffer
	tr := New(10, WithUnit("inj"))
	rep := NewReporter(tr, &buf, "campaign", time.Hour) // interval never fires
	rep.Start()
	tr.Add(10)
	rep.Stop()
	out := buf.String()
	if !strings.Contains(out, "campaign: 10/10 (100.0%)") {
		t.Fatalf("final status line missing from %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("status output not newline-terminated: %q", out)
	}
}

func TestReporterNilTrackerNoOp(t *testing.T) {
	var buf bytes.Buffer
	rep := NewReporter(nil, &buf, "x", time.Millisecond)
	rep.Start()
	rep.Stop()
	if buf.Len() != 0 {
		t.Fatalf("nil-tracker reporter wrote %q", buf.String())
	}
}

func TestReporterTicks(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	tr := New(100)
	tr.Add(5)
	rep := NewReporter(tr, w, "tick", 100*time.Millisecond)
	rep.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := strings.Count(buf.String(), "\n")
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reporter never ticked twice")
		}
		time.Sleep(10 * time.Millisecond)
	}
	rep.Stop()
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestRegistryLifecycle(t *testing.T) {
	clock := newFakeClock()
	reg := NewRegistry(2)
	reg.SetClock(clock.Now)

	run := reg.Begin("uncertainty", "samples=100", 100, WithUnit("samples"))
	run.Tracker().Add(40)
	clock.Advance(time.Second)

	sts := reg.Statuses()
	if len(sts) != 1 {
		t.Fatalf("got %d statuses, want 1", len(sts))
	}
	st := sts[0]
	if st.State != "running" || st.Completed != 40 || st.Total != 100 {
		t.Fatalf("status = %+v", st)
	}
	if st.Kind != "uncertainty" || st.Detail != "samples=100" {
		t.Fatalf("kind/detail = %q/%q", st.Kind, st.Detail)
	}
	if st.ETASec <= 0 {
		t.Fatalf("ETASec = %v, want > 0", st.ETASec)
	}

	run.Finish(nil)
	run.Finish(errors.New("second call must not win"))
	st = reg.Statuses()[0]
	if st.State != "done" || st.Error != "" {
		t.Fatalf("finished status = %+v", st)
	}
	if st.EndedAt == "" {
		t.Fatal("finished run missing EndedAt")
	}

	errRun := reg.Begin("sweep", "", 10)
	errRun.Finish(errors.New("boom"))
	for _, s := range reg.Statuses() {
		if s.ID == errRun.ID {
			if s.State != "error" || s.Error != "boom" {
				t.Fatalf("error status = %+v", s)
			}
		}
	}
}

func TestRegistryEvictsOldestFinished(t *testing.T) {
	reg := NewRegistry(2)
	var finished []*Run
	for i := 0; i < 5; i++ {
		r := reg.Begin("k", fmt.Sprintf("run %d", i), 1)
		r.Finish(nil)
		finished = append(finished, r)
	}
	live := reg.Begin("k", "live", 1)

	sts := reg.Statuses()
	if len(sts) != 3 { // 1 running + 2 retained finished
		t.Fatalf("got %d statuses, want 3: %+v", len(sts), sts)
	}
	ids := map[int64]bool{}
	for _, s := range sts {
		ids[s.ID] = true
	}
	if !ids[live.ID] || !ids[finished[4].ID] || !ids[finished[3].ID] {
		t.Fatalf("retained wrong runs: %+v", sts)
	}
	// Newest first.
	if sts[0].ID != live.ID {
		t.Fatalf("statuses not newest-first: %+v", sts)
	}
}

func TestTrackerDoneDoesNotAllocate(t *testing.T) {
	tr := New(1000, WithStat("x"))
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Done()
		tr.Observe(1)
	})
	if allocs != 0 {
		t.Fatalf("Done+Observe allocates %v per op, want 0", allocs)
	}
}
