// Package progress is the engine's live-telemetry primitive: an atomic,
// allocation-free Tracker counts task completions (injections, samples,
// sweep points, simulation chunks) as a long-running driver works, and a
// Snapshot turns the counts into rate, ETA, and a running-statistic
// summary without perturbing the hot path. A Reporter renders periodic
// status lines to a side channel (stderr for the CLIs), keeping the
// primary output byte-identical to an untracked run; a Registry exposes
// in-flight runs to the HTTP API (GET /v1/runs).
//
// The source paper's campaigns ran for weeks with operators watching the
// rigs; the simulated campaigns run for seconds to minutes, but a 100k-
// injection campaign or a multi-year longevity series is still too long
// to run dark. The design constraint is the DES kernel's speed: when
// tracking is disabled every driver pays a single predictable nil-check
// branch, and when enabled the per-task cost is a handful of atomic adds.
package progress

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// z95 is the standard normal quantile for a two-sided 95% interval, used
// for the running-statistic half-width (the same normal approximation the
// paper's Equation (1)/(2) bounds converge to at campaign sample sizes).
const z95 = 1.959963984540054

// Tracker counts completed tasks toward a known total. All write-side
// methods (Done, Add, Observe) are lock-free atomics and never allocate,
// so drivers can call them per injection / per sample / per chunk without
// measurable overhead; Snapshot (read side) takes a small mutex to smooth
// the rate estimate and is meant to be called at human frequencies.
//
// The zero Tracker is not useful; construct with New. A nil *Tracker is
// safe: every method is a no-op, so call sites thread `opts.Progress`
// through unconditionally and the disabled path stays one branch.
type Tracker struct {
	total     atomic.Int64
	completed atomic.Int64

	// Running-statistic accumulator: count, sum, and sum of squares of
	// observed values (float64 bits CAS-updated). The drivers decide what
	// a value is — recovery success (0/1) for campaigns, run availability
	// for longevity series, sampled downtime for Monte-Carlo runs.
	statCount atomic.Int64
	statSum   atomic.Uint64
	statSumSq atomic.Uint64

	statName string
	unit     string
	clock    func() time.Time
	start    time.Time

	// Snapshot-side smoothing state. Guarded by mu; only read-side calls
	// touch it.
	mu            sync.Mutex
	lastAt        time.Time
	lastCompleted int64
	ewmaRate      float64
}

// Option customizes a Tracker.
type Option func(*Tracker)

// WithStat names the running statistic reported by Observe (e.g.
// "recovered", "availability", "mean-YD-min"). Without it, snapshots
// carry no statistic even if Observe is called.
func WithStat(name string) Option { return func(t *Tracker) { t.statName = name } }

// WithUnit names the task unit for rendered rates (default "items": a
// campaign tracker uses "inj", a Monte-Carlo tracker "samples").
func WithUnit(unit string) Option { return func(t *Tracker) { t.unit = unit } }

// WithClock substitutes the time source (tests).
func WithClock(clock func() time.Time) Option { return func(t *Tracker) { t.clock = clock } }

// New constructs a tracker expecting total task completions (0 = unknown
// total: rates still work, ETA does not).
func New(total int64, opts ...Option) *Tracker {
	t := &Tracker{unit: "items", clock: time.Now}
	for _, o := range opts {
		o(t)
	}
	t.total.Store(total)
	t.start = t.clock()
	t.lastAt = t.start
	return t
}

// Done records one completed task. Safe for concurrent use; no-op on nil.
func (t *Tracker) Done() {
	if t != nil {
		t.completed.Add(1)
	}
}

// Add records n completed tasks at once.
func (t *Tracker) Add(n int64) {
	if t != nil && n > 0 {
		t.completed.Add(n)
	}
}

// Observe feeds one value into the running-statistic accumulator
// (mean ± 95% half-width in snapshots). Safe for concurrent use.
func (t *Tracker) Observe(v float64) {
	if t == nil {
		return
	}
	t.statCount.Add(1)
	addFloat(&t.statSum, v)
	addFloat(&t.statSumSq, v*v)
}

// addFloat CAS-accumulates a float64 stored as bits (the obs.Gauge idiom).
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Completed returns the completion count (0 on nil).
func (t *Tracker) Completed() int64 {
	if t == nil {
		return 0
	}
	return t.completed.Load()
}

// Total returns the expected task total (0 = unknown).
func (t *Tracker) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total.Load()
}

// SetTotal revises the expected total (drivers that discover work late).
func (t *Tracker) SetTotal(total int64) {
	if t != nil {
		t.total.Store(total)
	}
}

// Unit returns the task unit label.
func (t *Tracker) Unit() string {
	if t == nil {
		return ""
	}
	return t.unit
}

// Snapshot is a point-in-time view of a tracker.
type Snapshot struct {
	Completed int64
	Total     int64
	Elapsed   time.Duration
	// Rate is the smoothed completion rate in tasks/second (an EWMA over
	// snapshot intervals, falling back to the cumulative rate on the
	// first snapshot). 0 until at least one task completed.
	Rate float64
	// ETA estimates the remaining wall time at the smoothed rate. ok
	// (ETAKnown) is false when the total or rate is unknown.
	ETA      time.Duration
	ETAKnown bool
	// Running statistic (mean ± half-width at 95%, over StatN values).
	// StatName is empty when the tracker has no statistic configured.
	StatName      string
	StatMean      float64
	StatHalfWidth float64
	StatN         int64
	Unit          string
}

// Fraction returns completed/total in [0,1] (0 when the total is unknown).
func (s Snapshot) Fraction() float64 {
	if s.Total <= 0 {
		return 0
	}
	f := float64(s.Completed) / float64(s.Total)
	if f > 1 {
		f = 1
	}
	return f
}

// ewmaAlpha weights the newest interval rate; snapshots arrive at human
// cadence (~1 s), so 0.5 settles within a few ticks while damping the
// burstiness of chunked simulation advances.
const ewmaAlpha = 0.5

// stallDecayEvents controls when an idle gap starts decaying the rate:
// once the gap is long enough that stallDecayEvents completions were
// expected at the current rate and none arrived, the rate is capped at
// stallDecayEvents/gap — the largest rate plausibly consistent with the
// silence. Below that threshold the cap is above the current rate and
// nothing happens, so ordinary gaps between chunked completions (and
// rapid /v1/runs polls) never perturb the estimate. The cap depends only
// on the gap length, not on how often Snapshot is called.
const stallDecayEvents = 4

// Snapshot captures the tracker state, updating the smoothed rate. The
// zero Snapshot is returned for a nil tracker.
func (t *Tracker) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	now := t.clock()
	completed := t.completed.Load()

	t.mu.Lock()
	elapsed := now.Sub(t.start)
	dt := now.Sub(t.lastAt)
	if dt > 0 && completed > t.lastCompleted {
		inst := float64(completed-t.lastCompleted) / dt.Seconds()
		if t.ewmaRate == 0 {
			t.ewmaRate = inst
		} else {
			t.ewmaRate = ewmaAlpha*inst + (1-ewmaAlpha)*t.ewmaRate
		}
		t.lastAt = now
		t.lastCompleted = completed
	} else if dt > 0 && completed == t.lastCompleted && t.ewmaRate > 0 {
		// Stalled: nothing completed since lastAt. Without decay the
		// tracker would report its last good rate — and a static, ever-
		// wrong ETA — forever. Cap the rate at what the silence supports;
		// lastAt is deliberately left alone, so the idle gap keeps
		// widening and the cap keeps tightening until completions resume
		// (which re-smooths upward from the decayed value).
		if cap := stallDecayEvents / dt.Seconds(); cap < t.ewmaRate {
			t.ewmaRate = cap
		}
	} else if t.ewmaRate == 0 && completed > 0 && elapsed > 0 {
		t.ewmaRate = float64(completed) / elapsed.Seconds()
	}
	rate := t.ewmaRate
	t.mu.Unlock()

	snap := Snapshot{
		Completed: completed,
		Total:     t.total.Load(),
		Elapsed:   elapsed,
		Rate:      rate,
		StatName:  t.statName,
		Unit:      t.unit,
	}
	if snap.Total > 0 && rate > 0 && completed < snap.Total {
		snap.ETA = time.Duration(float64(snap.Total-completed) / rate * float64(time.Second))
		snap.ETAKnown = true
	} else if snap.Total > 0 && completed >= snap.Total {
		snap.ETA = 0
		snap.ETAKnown = true
	}
	if t.statName != "" {
		n := t.statCount.Load()
		snap.StatN = n
		if n > 0 {
			sum := math.Float64frombits(t.statSum.Load())
			sumSq := math.Float64frombits(t.statSumSq.Load())
			mean := sum / float64(n)
			snap.StatMean = mean
			if n > 1 {
				variance := (sumSq - float64(n)*mean*mean) / float64(n-1)
				if variance > 0 {
					snap.StatHalfWidth = z95 * math.Sqrt(variance/float64(n))
				}
			}
		}
	}
	return snap
}

// String renders the snapshot as one status line:
//
//	12345/100000 (12.3%)  3456.7 inj/s  ETA 25s  recovered=0.999870±0.000210
func (s Snapshot) String() string {
	unit := s.Unit
	if unit == "" {
		unit = "items"
	}
	var b []byte
	if s.Total > 0 {
		b = fmt.Appendf(b, "%d/%d (%.1f%%)", s.Completed, s.Total, s.Fraction()*100)
	} else {
		b = fmt.Appendf(b, "%d", s.Completed)
	}
	if s.Rate > 0 {
		b = fmt.Appendf(b, "  %.1f %s/s", s.Rate, unit)
	}
	if s.ETAKnown {
		b = fmt.Appendf(b, "  ETA %s", formatETA(s.ETA))
	}
	if s.StatName != "" && s.StatN > 0 {
		b = fmt.Appendf(b, "  %s=%.6f±%.6f", s.StatName, s.StatMean, s.StatHalfWidth)
	}
	return string(b)
}

// formatETA rounds an ETA to a human scale: sub-minute to the second,
// sub-hour to the minute boundary with seconds, beyond to minutes.
func formatETA(d time.Duration) string {
	switch {
	case d < time.Minute:
		return d.Round(time.Second).String()
	case d < time.Hour:
		return d.Round(time.Second).String()
	default:
		return d.Round(time.Minute).String()
	}
}

// Reporter renders a tracker to a writer on a fixed interval from its own
// goroutine. The writer is typically os.Stderr: progress is operator
// telemetry, and the data channel (stdout) must stay byte-identical with
// and without it.
type Reporter struct {
	t        *Tracker
	w        io.Writer
	label    string
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	started  bool
}

// NewReporter constructs a reporter printing "label: <snapshot>" lines
// every interval (min 100 ms; default 1 s for interval <= 0). A nil
// tracker yields a reporter whose Start and Stop are no-ops.
func NewReporter(t *Tracker, w io.Writer, label string, interval time.Duration) *Reporter {
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	return &Reporter{t: t, w: w, label: label, interval: interval,
		stop: make(chan struct{}), done: make(chan struct{})}
}

// Start launches the reporting goroutine. Calling Start twice panics.
func (r *Reporter) Start() {
	if r.t == nil || r.w == nil {
		return
	}
	if r.started {
		panic("progress: Reporter started twice")
	}
	r.started = true
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(r.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				r.emit()
			case <-r.stop:
				return
			}
		}
	}()
}

// Stop halts the reporter and prints one final status line, so short runs
// that finish inside the first interval still report their outcome.
func (r *Reporter) Stop() {
	if r.t == nil || r.w == nil || !r.started {
		return
	}
	close(r.stop)
	<-r.done
	r.emit()
}

func (r *Reporter) emit() {
	snap := r.t.Snapshot()
	fmt.Fprintf(r.w, "%s: %s\n", r.label, snap)
}
