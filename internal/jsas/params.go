// Package jsas encodes the paper's concrete availability models for the
// Sun Java System Application Server EE7 cluster: the HADB node-pair model
// (Figure 3), the N-instance Application Server model (Figure 4,
// generalized beyond two instances), and the top-level hierarchical system
// model (Figure 2), together with the Section 5 parameter set and the
// configuration presets used in Tables 2 and 3.
package jsas

import (
	"errors"
	"fmt"
	"time"
)

// ErrBadConfig is reported for invalid configurations or parameters.
var ErrBadConfig = errors.New("jsas: invalid configuration")

// hoursPerYear converts the paper's per-year failure rates to the per-hour
// model time base.
const hoursPerYear = 8760.0

// Params holds the model parameters of Section 5 of the paper. Rates are
// quoted per year (as in the paper); durations are real durations. The
// zero value is not useful — start from DefaultParams.
type Params struct {
	// --- HADB node parameters ---

	// HADBFailuresPerYear is the restartable HADB software failure rate
	// per node (La_hadb = 2/year).
	HADBFailuresPerYear float64
	// HADBOSFailuresPerYear is the OS failure rate per HADB node
	// (La_os = 1/year).
	HADBOSFailuresPerYear float64
	// HADBHWFailuresPerYear is the permanent hardware failure rate per
	// HADB node (La_hw = 1/year).
	HADBHWFailuresPerYear float64
	// MaintenancePerYear is the scheduled maintenance event rate for an
	// HADB pair (La_mnt = 4/year).
	MaintenancePerYear float64
	// HADBRestartShort is the restart time after an HADB software failure
	// (Tstart_short = 1 min; measured ~40 s).
	HADBRestartShort time.Duration
	// HADBRestartLong is the restart time after an OS failure on an HADB
	// node (Tstart_long = 15 min).
	HADBRestartLong time.Duration
	// HADBRepair is the spare-rebuild time after a hardware failure
	// (Trepair = 30 min; measured ~12 min/GB).
	HADBRepair time.Duration
	// HADBRestore is the human-intervention restore time after a double
	// node failure (Trestore = 1 h).
	HADBRestore time.Duration
	// MaintenanceSwitchover is the switchover time to a standby during
	// maintenance (Tmnt = 1 min).
	MaintenanceSwitchover time.Duration
	// FIR is the fraction of imperfect recovery (0.001; bounded by
	// Equation 1 from the fault-injection campaign).
	FIR float64

	// --- Application Server instance parameters ---

	// ASFailuresPerYear is the restartable AS failure rate per instance
	// (La_as = 50/year).
	ASFailuresPerYear float64
	// ASOSFailuresPerYear is the OS failure rate per AS node (1/year).
	ASOSFailuresPerYear float64
	// ASHWFailuresPerYear is the hardware failure rate per AS node
	// (1/year).
	ASHWFailuresPerYear float64
	// SessionRecovery is the session failover re-establishment time
	// (Trecovery = 5 s; measured sub-second).
	SessionRecovery time.Duration
	// ASRestartShort is the restart time after an AS failure, including
	// the load balancer health-check detection lag
	// (Tstart_short = 90 s; measured < 25 s restart + 1 min health check).
	ASRestartShort time.Duration
	// ASRestartLong is the average recovery time for HW/OS failures on an
	// AS node (Tstart_long = 1 h: mean of 15 min OS reboot and 100 min HW
	// repair at one failure per year each).
	ASRestartLong time.Duration
	// ASRestoreAll is the human-intervention restart time when all AS
	// instances are down (Tstart_all = 30 min).
	ASRestoreAll time.Duration

	// Acceleration is the workload-dependent failure acceleration factor:
	// after the i-th failure the per-instance rate is multiplied by
	// Acceleration^i (paper §4: La_i = La_0·2^i).
	Acceleration float64

	// --- Correlated-failure (beta-factor) parameters ---

	// Beta is the beta-factor common-cause fraction: the fraction of
	// component failures that arrive via a shared cause (power domain,
	// switch, bad push) taking the whole system down at once. The shared
	// mode enters the top-level diagram as an extra failure state with
	// rate La_cc = Beta/(1−Beta) · La_independent, so Beta equals
	// La_cc/(La_cc + La_independent) — directly comparable to the
	// common-cause fraction a correlated fault-injection campaign
	// measures (faultinject.Report.MeasuredCommonCauseFraction). 0
	// disables the mode and leaves every model untouched.
	Beta float64
	// CommonCauseRestore is the operator restore time after a
	// common-cause event (all tiers brought back together). Only used
	// when Beta > 0.
	CommonCauseRestore time.Duration
}

// DefaultParams returns the paper's Section 5 parameter set.
func DefaultParams() Params {
	return Params{
		HADBFailuresPerYear:   2,
		HADBOSFailuresPerYear: 1,
		HADBHWFailuresPerYear: 1,
		MaintenancePerYear:    4,
		HADBRestartShort:      time.Minute,
		HADBRestartLong:       15 * time.Minute,
		HADBRepair:            30 * time.Minute,
		HADBRestore:           time.Hour,
		MaintenanceSwitchover: time.Minute,
		FIR:                   0.001,

		ASFailuresPerYear:   50,
		ASOSFailuresPerYear: 1,
		ASHWFailuresPerYear: 1,
		SessionRecovery:     5 * time.Second,
		ASRestartShort:      90 * time.Second,
		ASRestartLong:       time.Hour,
		ASRestoreAll:        30 * time.Minute,

		Acceleration: 2,

		Beta:               0,
		CommonCauseRestore: time.Hour,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	type check struct {
		name string
		ok   bool
	}
	checks := []check{
		{"HADBFailuresPerYear ≥ 0", p.HADBFailuresPerYear >= 0},
		{"HADBOSFailuresPerYear ≥ 0", p.HADBOSFailuresPerYear >= 0},
		{"HADBHWFailuresPerYear ≥ 0", p.HADBHWFailuresPerYear >= 0},
		{"MaintenancePerYear ≥ 0", p.MaintenancePerYear >= 0},
		{"HADB node failure rate > 0", p.HADBFailuresPerYear+p.HADBOSFailuresPerYear+p.HADBHWFailuresPerYear > 0},
		{"AS failure rate > 0", p.ASFailuresPerYear+p.ASOSFailuresPerYear+p.ASHWFailuresPerYear > 0},
		{"HADBRestartShort > 0", p.HADBRestartShort > 0},
		{"HADBRestartLong > 0", p.HADBRestartLong > 0},
		{"HADBRepair > 0", p.HADBRepair > 0},
		{"HADBRestore > 0", p.HADBRestore > 0},
		{"MaintenanceSwitchover > 0", p.MaintenanceSwitchover > 0},
		{"FIR in [0,1)", p.FIR >= 0 && p.FIR < 1},
		{"ASFailuresPerYear ≥ 0", p.ASFailuresPerYear >= 0},
		{"SessionRecovery > 0", p.SessionRecovery > 0},
		{"ASRestartShort > 0", p.ASRestartShort > 0},
		{"ASRestartLong > 0", p.ASRestartLong > 0},
		{"ASRestoreAll > 0", p.ASRestoreAll > 0},
		{"Acceleration ≥ 1", p.Acceleration >= 1},
		{"Beta in [0,1)", p.Beta >= 0 && p.Beta < 1},
		{"CommonCauseRestore > 0 when Beta > 0", p.Beta == 0 || p.CommonCauseRestore > 0},
	}
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("parameter check failed: %s: %w", c.name, ErrBadConfig)
		}
	}
	return nil
}

// hadbNodeFailurePerHour is the total per-node HADB failure rate λ in
// model units.
func (p Params) hadbNodeFailurePerHour() float64 {
	return (p.HADBFailuresPerYear + p.HADBOSFailuresPerYear + p.HADBHWFailuresPerYear) / hoursPerYear
}

// asInstanceFailurePerHour is the total per-instance AS failure rate λ.
func (p Params) asInstanceFailurePerHour() float64 {
	return (p.ASFailuresPerYear + p.ASOSFailuresPerYear + p.ASHWFailuresPerYear) / hoursPerYear
}

// fractionShortStart is FSS = La_as/La, the probability an AS failure only
// needs the short restart.
func (p Params) fractionShortStart() float64 {
	total := p.ASFailuresPerYear + p.ASOSFailuresPerYear + p.ASHWFailuresPerYear
	if total == 0 {
		return 0
	}
	return p.ASFailuresPerYear / total
}

// Config describes a deployment shape: the modeled configurations of §4.
type Config struct {
	// ASInstances is the number of Application Server instances (≥ 1).
	ASInstances int
	// HADBPairs is the number of HADB node pairs (DRU mirror pairs);
	// 0 models a deployment without session persistence (Table 3 row 1).
	HADBPairs int
	// HADBSpares is the number of spare HADB nodes. It does not enter the
	// analytic model (a spare is assumed available for repair, as in the
	// paper) but is carried for the testbed simulator and reports.
	HADBSpares int
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	if c.ASInstances < 1 {
		return fmt.Errorf("ASInstances = %d, want ≥ 1: %w", c.ASInstances, ErrBadConfig)
	}
	if c.HADBPairs < 0 || c.HADBSpares < 0 {
		return fmt.Errorf("negative HADB counts: %w", ErrBadConfig)
	}
	return nil
}

// String renders the configuration compactly.
func (c Config) String() string {
	return fmt.Sprintf("%d AS instance(s), %d HADB pair(s), %d spare(s)", c.ASInstances, c.HADBPairs, c.HADBSpares)
}

// Paper configuration presets.
var (
	// Config1 is the paper's Config 1: 2 AS instances, 2 HADB node pairs,
	// 2 spare nodes.
	Config1 = Config{ASInstances: 2, HADBPairs: 2, HADBSpares: 2}
	// Config2 is the paper's Config 2: 4 AS instances, 4 HADB node pairs,
	// 2 spare nodes.
	Config2 = Config{ASInstances: 4, HADBPairs: 4, HADBSpares: 2}
)

// Table3Configs returns the six configurations compared in Table 3 of the
// paper (1 instance with no HADB, then N instances with N pairs).
func Table3Configs() []Config {
	return []Config{
		{ASInstances: 1, HADBPairs: 0, HADBSpares: 0},
		{ASInstances: 2, HADBPairs: 2, HADBSpares: 2},
		{ASInstances: 4, HADBPairs: 4, HADBSpares: 2},
		{ASInstances: 6, HADBPairs: 6, HADBSpares: 2},
		{ASInstances: 8, HADBPairs: 8, HADBSpares: 2},
		{ASInstances: 10, HADBPairs: 10, HADBSpares: 2},
	}
}
