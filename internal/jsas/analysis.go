package jsas

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/backend"
	"repro/internal/sensitivity"
	"repro/internal/uncertainty"
)

// Uncertainty-analysis parameter names (paper §7). Rates are per year,
// Tstart_long is in hours, FIR is a fraction. The OS and HW rates apply to
// both AS and HADB nodes, as in the paper's parameter table.
const (
	ParamASFailures   = "La_as"       // AS failure rate, 10–50 /year
	ParamHADBFailures = "La_hadb"     // HADB failure rate, 1–4 /year
	ParamOSFailures   = "La_os"       // OS failure rate, 0.5–2 /year
	ParamHWFailures   = "La_hw"       // HW failure rate, 0.5–2 /year
	ParamTstartLong   = "Tstart_long" // AS HW/OS recovery time, 0.5–3 h
	ParamFIR          = "FIR"         // fraction of imperfect recovery, 0–0.2%
)

// PaperUncertaintyRanges returns the six sampled parameter ranges of the
// paper's uncertainty analysis (§7).
func PaperUncertaintyRanges() []uncertainty.Range {
	return []uncertainty.Range{
		{Name: ParamASFailures, Low: 10, High: 50},
		{Name: ParamHADBFailures, Low: 1, High: 4},
		{Name: ParamOSFailures, Low: 0.5, High: 2},
		{Name: ParamHWFailures, Low: 0.5, High: 2},
		{Name: ParamTstartLong, Low: 0.5, High: 3},
		{Name: ParamFIR, Low: 0, High: 0.002},
	}
}

// ApplyOverrides returns a copy of p with the named analysis parameters
// replaced. Unknown names yield an error.
func ApplyOverrides(p Params, overrides map[string]float64) (Params, error) {
	for name, v := range overrides {
		switch name {
		case ParamASFailures:
			p.ASFailuresPerYear = v
		case ParamHADBFailures:
			p.HADBFailuresPerYear = v
		case ParamOSFailures:
			p.ASOSFailuresPerYear = v
			p.HADBOSFailuresPerYear = v
		case ParamHWFailures:
			p.ASHWFailuresPerYear = v
			p.HADBHWFailuresPerYear = v
		case ParamTstartLong:
			p.ASRestartLong = time.Duration(v * float64(time.Hour))
		case ParamFIR:
			p.FIR = v
		default:
			return Params{}, fmt.Errorf("unknown analysis parameter %q: %w", name, ErrBadConfig)
		}
	}
	return p, nil
}

// UncertaintySolver adapts a configuration to the uncertainty package: each
// sampled assignment is applied over the base parameters and the hierarchy
// re-solved for yearly downtime.
func UncertaintySolver(cfg Config, base Params) uncertainty.Solver {
	return func(assignment map[string]float64) (float64, error) {
		p, err := ApplyOverrides(base, assignment)
		if err != nil {
			return 0, err
		}
		res, err := Solve(cfg, p)
		if err != nil {
			return 0, err
		}
		return res.YearlyDowntimeMinutes, nil
	}
}

// PaperImportanceRanges returns the six uncertainty parameters with their
// Section 5 nominal values and Section 7 ranges, ready for the
// one-at-a-time importance analysis in package sensitivity.
func PaperImportanceRanges(base Params) []sensitivity.ImportanceRange {
	return []sensitivity.ImportanceRange{
		{Name: ParamASFailures, Base: base.ASFailuresPerYear, Low: 10, High: 50},
		{Name: ParamHADBFailures, Base: base.HADBFailuresPerYear, Low: 1, High: 4},
		{Name: ParamOSFailures, Base: base.ASOSFailuresPerYear, Low: 0.5, High: 2},
		{Name: ParamHWFailures, Base: base.ASHWFailuresPerYear, Low: 0.5, High: 2},
		{Name: ParamTstartLong, Base: base.ASRestartLong.Hours(), Low: 0.5, High: 3},
		{Name: ParamFIR, Base: base.FIR, Low: 0, High: 0.002},
	}
}

// ImportanceSolver adapts a configuration to the importance analysis: the
// measure is yearly downtime in minutes.
func ImportanceSolver(cfg Config, base Params) sensitivity.MultiSolver {
	return sensitivity.MultiSolver(UncertaintySolver(cfg, base))
}

// TstartLongSweepSolver adapts a configuration to the sensitivity package
// for the paper's Figures 5/6 sweep: the swept value is the AS HW/OS
// recovery time in hours.
func TstartLongSweepSolver(cfg Config, base Params) sensitivity.Solver {
	return SweepSolver(cfg, base, ParamTstartLong)
}

// SweepSolver generalizes the Figures 5/6 sweep to any of the §7 analysis
// parameters (see the Param* constants): the swept value is the parameter
// in its natural unit (per year for rates, hours for Tstart_long, a
// fraction for FIR).
func SweepSolver(cfg Config, base Params, param string) sensitivity.Solver {
	return func(value float64) (float64, float64, error) {
		p, err := ApplyOverrides(base, map[string]float64{param: value})
		if err != nil {
			return 0, 0, err
		}
		res, err := Solve(cfg, p)
		if err != nil {
			return 0, 0, err
		}
		return res.Availability, res.YearlyDowntimeMinutes, nil
	}
}

// SweepSolverBackend is SweepSolver routed through the chosen solver
// backend, so the Figures 5/6 sweeps can be reproduced (and
// cross-checked) on either engine.
func SweepSolverBackend(cfg Config, base Params, param string, kind backend.Kind) sensitivity.Solver {
	if kind == backend.KindCTMC || kind == "" {
		return SweepSolver(cfg, base, param)
	}
	return func(value float64) (float64, float64, error) {
		p, err := ApplyOverrides(base, map[string]float64{param: value})
		if err != nil {
			return 0, 0, err
		}
		res, err := SolveBackend(context.Background(), cfg, p, kind)
		if err != nil {
			return 0, 0, err
		}
		return res.Availability, res.YearlyDowntimeMinutes, nil
	}
}

// ReplicationPoint is one sample of a replication-factor sweep: a k-of-n
// AS cluster's availability.
type ReplicationPoint struct {
	Instances int
	Quorum    int
	// Availability and YearlyDowntimeMinutes are the solved measures.
	Availability          float64
	YearlyDowntimeMinutes float64
	// Size is the solved model's size (CTMC states or BN variables).
	Size int
}

// ReplicationSweep evaluates k-of-n AS cluster availability for every
// replica count n in [from, to] with stride step, where the quorum is
// k = ⌈quorumFrac·n⌉ (clamped to ≥ 1). The bayes backend solves any n;
// the ctmc backend uses the exact flat cross-product and fails with
// hier.ErrBadComponent once 3^n passes hier.MaxProductStates (n ≈ 12) —
// which is the point of the sweep: it walks straight through the wall
// that separates the two backends.
func ReplicationSweep(ctx context.Context, p Params, from, to, step int, quorumFrac float64, kind backend.Kind) ([]ReplicationPoint, error) {
	if from < 1 || to < from || step < 1 {
		return nil, fmt.Errorf("replication sweep range [%d, %d] step %d: %w", from, to, step, ErrBadConfig)
	}
	if !(quorumFrac > 0 && quorumFrac <= 1) {
		return nil, fmt.Errorf("quorum fraction %g outside (0, 1]: %w", quorumFrac, ErrBadConfig)
	}
	var out []ReplicationPoint
	for n := from; n <= to; n += step {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("replication sweep canceled: %w", err)
			}
		}
		k := int(math.Ceil(quorumFrac * float64(n)))
		if k < 1 {
			k = 1
		}
		q := ClusterQuorum{Instances: n, Quorum: k}
		pt := ReplicationPoint{Instances: n, Quorum: k}
		switch kind {
		case backend.KindBayes:
			net, err := ClusterBayes(p, q)
			if err != nil {
				return nil, fmt.Errorf("n=%d: %w", n, err)
			}
			res, err := net.Solve(ctx)
			if err != nil {
				return nil, fmt.Errorf("n=%d: %w", n, err)
			}
			pt.Availability = res.Availability
			pt.YearlyDowntimeMinutes = res.YearlyDowntimeMinutes
			pt.Size = res.Size
		case backend.KindCTMC, "":
			s, err := ClusterProduct(p, q)
			if err != nil {
				return nil, fmt.Errorf("n=%d: %w", n, err)
			}
			res, err := solvePooled(s)
			if err != nil {
				return nil, fmt.Errorf("n=%d: %w", n, err)
			}
			pt.Availability = res.Availability
			pt.YearlyDowntimeMinutes = res.YearlyDowntimeMinutes
			pt.Size = s.Model().NumStates()
		default:
			return nil, fmt.Errorf("unknown backend %q: %w", kind, ErrBadConfig)
		}
		out = append(out, pt)
	}
	return out, nil
}
