package jsas

import (
	"fmt"
	"time"

	"repro/internal/sensitivity"
	"repro/internal/uncertainty"
)

// Uncertainty-analysis parameter names (paper §7). Rates are per year,
// Tstart_long is in hours, FIR is a fraction. The OS and HW rates apply to
// both AS and HADB nodes, as in the paper's parameter table.
const (
	ParamASFailures   = "La_as"       // AS failure rate, 10–50 /year
	ParamHADBFailures = "La_hadb"     // HADB failure rate, 1–4 /year
	ParamOSFailures   = "La_os"       // OS failure rate, 0.5–2 /year
	ParamHWFailures   = "La_hw"       // HW failure rate, 0.5–2 /year
	ParamTstartLong   = "Tstart_long" // AS HW/OS recovery time, 0.5–3 h
	ParamFIR          = "FIR"         // fraction of imperfect recovery, 0–0.2%
)

// PaperUncertaintyRanges returns the six sampled parameter ranges of the
// paper's uncertainty analysis (§7).
func PaperUncertaintyRanges() []uncertainty.Range {
	return []uncertainty.Range{
		{Name: ParamASFailures, Low: 10, High: 50},
		{Name: ParamHADBFailures, Low: 1, High: 4},
		{Name: ParamOSFailures, Low: 0.5, High: 2},
		{Name: ParamHWFailures, Low: 0.5, High: 2},
		{Name: ParamTstartLong, Low: 0.5, High: 3},
		{Name: ParamFIR, Low: 0, High: 0.002},
	}
}

// ApplyOverrides returns a copy of p with the named analysis parameters
// replaced. Unknown names yield an error.
func ApplyOverrides(p Params, overrides map[string]float64) (Params, error) {
	for name, v := range overrides {
		switch name {
		case ParamASFailures:
			p.ASFailuresPerYear = v
		case ParamHADBFailures:
			p.HADBFailuresPerYear = v
		case ParamOSFailures:
			p.ASOSFailuresPerYear = v
			p.HADBOSFailuresPerYear = v
		case ParamHWFailures:
			p.ASHWFailuresPerYear = v
			p.HADBHWFailuresPerYear = v
		case ParamTstartLong:
			p.ASRestartLong = time.Duration(v * float64(time.Hour))
		case ParamFIR:
			p.FIR = v
		default:
			return Params{}, fmt.Errorf("unknown analysis parameter %q: %w", name, ErrBadConfig)
		}
	}
	return p, nil
}

// UncertaintySolver adapts a configuration to the uncertainty package: each
// sampled assignment is applied over the base parameters and the hierarchy
// re-solved for yearly downtime.
func UncertaintySolver(cfg Config, base Params) uncertainty.Solver {
	return func(assignment map[string]float64) (float64, error) {
		p, err := ApplyOverrides(base, assignment)
		if err != nil {
			return 0, err
		}
		res, err := Solve(cfg, p)
		if err != nil {
			return 0, err
		}
		return res.YearlyDowntimeMinutes, nil
	}
}

// PaperImportanceRanges returns the six uncertainty parameters with their
// Section 5 nominal values and Section 7 ranges, ready for the
// one-at-a-time importance analysis in package sensitivity.
func PaperImportanceRanges(base Params) []sensitivity.ImportanceRange {
	return []sensitivity.ImportanceRange{
		{Name: ParamASFailures, Base: base.ASFailuresPerYear, Low: 10, High: 50},
		{Name: ParamHADBFailures, Base: base.HADBFailuresPerYear, Low: 1, High: 4},
		{Name: ParamOSFailures, Base: base.ASOSFailuresPerYear, Low: 0.5, High: 2},
		{Name: ParamHWFailures, Base: base.ASHWFailuresPerYear, Low: 0.5, High: 2},
		{Name: ParamTstartLong, Base: base.ASRestartLong.Hours(), Low: 0.5, High: 3},
		{Name: ParamFIR, Base: base.FIR, Low: 0, High: 0.002},
	}
}

// ImportanceSolver adapts a configuration to the importance analysis: the
// measure is yearly downtime in minutes.
func ImportanceSolver(cfg Config, base Params) sensitivity.MultiSolver {
	return sensitivity.MultiSolver(UncertaintySolver(cfg, base))
}

// TstartLongSweepSolver adapts a configuration to the sensitivity package
// for the paper's Figures 5/6 sweep: the swept value is the AS HW/OS
// recovery time in hours.
func TstartLongSweepSolver(cfg Config, base Params) sensitivity.Solver {
	return SweepSolver(cfg, base, ParamTstartLong)
}

// SweepSolver generalizes the Figures 5/6 sweep to any of the §7 analysis
// parameters (see the Param* constants): the swept value is the parameter
// in its natural unit (per year for rates, hours for Tstart_long, a
// fraction for FIR).
func SweepSolver(cfg Config, base Params, param string) sensitivity.Solver {
	return func(value float64) (float64, float64, error) {
		p, err := ApplyOverrides(base, map[string]float64{param: value})
		if err != nil {
			return 0, 0, err
		}
		res, err := Solve(cfg, p)
		if err != nil {
			return 0, 0, err
		}
		return res.Availability, res.YearlyDowntimeMinutes, nil
	}
}
