package jsas

import (
	"fmt"
	"math"

	"repro/internal/ctmc"
	"repro/internal/reward"
)

// Application Server model state names. For the 2-instance model these
// correspond one-to-one to Figure 4 of the paper; for other instance
// counts the phase states are named systematically (see phaseName).
const (
	ASStateAllWork = "All_Work"
	ASStateAllDown = "All_Down"
)

// phaseName names the degraded state with r instances in session-recovery
// phase, s in short restart, and l in long restart.
func phaseName(r, s, l int) string {
	if r+s+l == 0 {
		return ASStateAllWork
	}
	return fmt.Sprintf("R%dS%dL%d", r, s, l)
}

// Figure 4 state names for the 2-instance model.
const (
	as2Recovery  = "Recovery"
	as2DownShort = "1DownShort"
	as2DownLong  = "1DownLong"
)

// BuildAppServer constructs the Application Server cluster model for n
// instances, generalizing Figure 4 of the paper:
//
//   - Each failure sends one instance through a session Recovery phase
//     (Trecovery), then with probability FSS = La_as/La into a short
//     restart (Tstart_short) or with 1−FSS into a long restart
//     (Tstart_long).
//   - While d instances are down, each surviving instance fails at the
//     workload-accelerated rate λ·Acc^d (paper §4: La_i = La_0·2^i); a
//     failure that downs the last instance enters the All_Down failure
//     state directly.
//   - All_Down is restored by operator intervention at rate 1/Tstart_all.
//
// For n = 2 this reduces exactly to Figure 4 (states All_Work, Recovery,
// 1DownShort, 1DownLong, 2_Down — here named All_Down).
//
// For n = 1 there is no failover: the instance alternates between up and
// restarting (short for AS failures, long for HW/OS), matching the
// 1-instance row of Table 3.
func BuildAppServer(p Params, n int) (*reward.Structure, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("instance count %d, want ≥ 1: %w", n, ErrBadConfig)
	}
	if n == 1 {
		return buildAS1(p)
	}
	return buildASCluster(p, n)
}

// buildAS1 is the no-redundancy single instance model (Table 3 row 1).
func buildAS1(p Params) (*reward.Structure, error) {
	laAS := p.ASFailuresPerYear / hoursPerYear
	laLong := (p.ASOSFailuresPerYear + p.ASHWFailuresPerYear) / hoursPerYear
	b := ctmc.NewBuilder()
	up := b.State(ASStateAllWork)
	short := b.State(as2DownShort)
	long := b.State(as2DownLong)
	b.Transition(up, short, laAS)
	b.Transition(up, long, laLong)
	b.Transition(short, up, 1/p.ASRestartShort.Hours())
	b.Transition(long, up, 1/p.ASRestartLong.Hours())
	m, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("AS 1-instance model: %w", err)
	}
	s, err := reward.Binary(m, as2DownShort, as2DownLong)
	if err != nil {
		return nil, fmt.Errorf("AS 1-instance model: %w", err)
	}
	return s, nil
}

// asPhase identifies a degraded cluster state by the number of instances
// in each recovery phase.
type asPhase struct{ r, s, l int }

// buildASCluster is the phase-tracking n ≥ 2 model.
func buildASCluster(p Params, n int) (*reward.Structure, error) {
	la := p.asInstanceFailurePerHour()
	fss := p.fractionShortStart()
	trec := p.SessionRecovery.Hours()
	tss := p.ASRestartShort.Hours()
	tsl := p.ASRestartLong.Hours()
	acc := p.Acceleration

	b := ctmc.NewBuilder()
	states := make(map[asPhase]ctmc.State)
	// Enumerate all phases with r+s+l ≤ n−1 (d = n means All_Down).
	for r := 0; r <= n-1; r++ {
		for s := 0; s+r <= n-1; s++ {
			for l := 0; l+s+r <= n-1; l++ {
				name := phaseName(r, s, l)
				if n == 2 {
					// Use the paper's Figure 4 names.
					switch (asPhase{r, s, l}) {
					case asPhase{1, 0, 0}:
						name = as2Recovery
					case asPhase{0, 1, 0}:
						name = as2DownShort
					case asPhase{0, 0, 1}:
						name = as2DownLong
					}
				}
				states[asPhase{r, s, l}] = b.State(name)
			}
		}
	}
	allDown := b.State(ASStateAllDown)

	for ph, st := range states {
		d := ph.r + ph.s + ph.l
		// Failure of one of the n−d surviving instances at accelerated
		// per-instance rate λ·Acc^d.
		failRate := float64(n-d) * la * math.Pow(acc, float64(d))
		if d+1 == n {
			b.Transition(st, allDown, failRate)
		} else {
			b.Transition(st, states[asPhase{ph.r + 1, ph.s, ph.l}], failRate)
		}
		// Session-recovery phase completions split short/long.
		if ph.r > 0 {
			rate := float64(ph.r) / trec
			if fss > 0 {
				b.Transition(st, states[asPhase{ph.r - 1, ph.s + 1, ph.l}], rate*fss)
			}
			if fss < 1 {
				b.Transition(st, states[asPhase{ph.r - 1, ph.s, ph.l + 1}], rate*(1-fss))
			}
		}
		// Restart completions.
		if ph.s > 0 {
			b.Transition(st, states[asPhase{ph.r, ph.s - 1, ph.l}], float64(ph.s)/tss)
		}
		if ph.l > 0 {
			b.Transition(st, states[asPhase{ph.r, ph.s, ph.l - 1}], float64(ph.l)/tsl)
		}
	}
	// Operator restore from All_Down back to full service.
	b.Transition(allDown, states[asPhase{0, 0, 0}], 1/p.ASRestoreAll.Hours())

	m, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("AS %d-instance model: %w", n, err)
	}
	s, err := reward.Binary(m, ASStateAllDown)
	if err != nil {
		return nil, fmt.Errorf("AS %d-instance model: %w", n, err)
	}
	return s, nil
}
