package jsas

import (
	"context"
	"fmt"

	"repro/internal/backend"
	"repro/internal/bayes"
	"repro/internal/ctmc"
	"repro/internal/hier"
	"repro/internal/reward"
)

// BayesModel builds the hybrid hierarchical–Bayesian-network model of a
// JSAS configuration: the leaf submodels (the AS cluster and the HADB
// node pair) are solved exactly by the CTMC engine, and their
// steady-state availabilities become basic-event priors composed by a
// Bayesian network instead of the Figure 2 top-level chain — the system
// is up iff the AS cluster event and every one of the P pair events hold.
//
// The composition assumes the submodels fail independently, which the
// paper's hierarchy also assumes; for the paper's availabilities the two
// compositions differ by O(r_as·r_hadb) ≈ 1e-11, far inside Table 2/3
// reporting precision. The payoff is scale: the BN composition extends to
// replication counts (k-of-n quorums, 100-pair farms) where the flat
// cross-product CTMC is intractable — see ClusterBayes.
func BayesModel(cfg Config, p Params) (*bayes.Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	as, err := BuildAppServer(p, cfg.ASInstances)
	if err != nil {
		return nil, err
	}
	asRes, err := solvePooled(as)
	if err != nil {
		return nil, fmt.Errorf("AS submodel: %w", err)
	}
	b := bayes.NewBuilder(fmt.Sprintf("JSAS (%s)", cfg))
	events := []bayes.Node{b.Basic("ApplServer", asRes.Availability)}
	// Total independent equivalent failure rate at the top level — the
	// same base the CTMC backend's beta-factor state scales from.
	totalInd := asRes.LambdaEq
	if cfg.HADBPairs > 0 {
		pair, err := BuildHADBPair(p)
		if err != nil {
			return nil, err
		}
		pairRes, err := solvePooled(pair)
		if err != nil {
			return nil, fmt.Errorf("HADB submodel: %w", err)
		}
		for i := 1; i <= cfg.HADBPairs; i++ {
			events = append(events, b.Basic(fmt.Sprintf("HADBPair%d", i), pairRes.Availability))
		}
		totalInd += float64(cfg.HADBPairs) * pairRes.LambdaEq
	}
	root := b.And("JSAS", events...)
	if p.Beta > 0 && totalInd > 0 {
		// Beta-factor common cause as a noisy-OR leak: the shared mode is
		// an independent two-state process with availability A_cc, and
		// the system is up iff the independent composition holds AND the
		// shared mode has not fired — P(up) = A_cc · P(root), i.e. a
		// noisy-OR failure gate with leak 1−A_cc and weight-1 passthrough
		// of the independent root.
		laCC := p.Beta / (1 - p.Beta) * totalInd
		muCC := 1 / p.CommonCauseRestore.Hours()
		aCC := muCC / (laCC + muCC)
		root = b.NoisyOr("JSAS+CC", 1-aCC, []bayes.Node{root}, []float64{1})
	}
	net, err := b.Build(root)
	if err != nil {
		return nil, fmt.Errorf("jsas: bayes compose: %w", err)
	}
	return net, nil
}

// solvePooled solves a submodel with a pooled solve context.
func solvePooled(s *reward.Structure) (*reward.Result, error) {
	sv := solverPool.Get().(*ctmc.Solver)
	defer solverPool.Put(sv)
	return s.Solve(ctmc.SolveOptions{Solver: sv})
}

// SolveBackend solves a configuration with the chosen backend and returns
// the backend-independent result — the common entry point for the CLI's
// -backend flag and the jobs engine's bayes kind.
func SolveBackend(ctx context.Context, cfg Config, p Params, kind backend.Kind) (*backend.Result, error) {
	switch kind {
	case backend.KindCTMC, "":
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("jsas solve canceled: %w", err)
			}
		}
		res, err := Solve(cfg, p)
		if err != nil {
			return nil, err
		}
		// Size: states across the hierarchy (AS submodel + 6-state pair
		// model when present + 3-state top diagram, 4 with a beta-factor
		// common-cause state).
		size := 3
		if p.Beta > 0 {
			size++
		}
		if as, err := BuildAppServer(p, cfg.ASInstances); err == nil {
			size += as.Model().NumStates()
		}
		if cfg.HADBPairs > 0 {
			size += 6
		}
		return &backend.Result{
			Backend:               backend.KindCTMC,
			Name:                  fmt.Sprintf("JSAS (%s)", cfg),
			Availability:          res.Availability,
			YearlyDowntimeMinutes: res.YearlyDowntimeMinutes,
			Size:                  size,
		}, nil
	case backend.KindBayes:
		net, err := BayesModel(cfg, p)
		if err != nil {
			return nil, err
		}
		return net.Solve(ctx)
	default:
		return nil, fmt.Errorf("unknown backend %q: %w", kind, ErrBadConfig)
	}
}

// ClusterQuorum describes a replicated AS deployment where service
// requires a quorum: n independent single-instance servers of which at
// least k must be up. This is the regime the paper's hierarchy cannot
// express (its cluster model only distinguishes "all down") and the flat
// cross-product CTMC cannot reach (3^n states).
type ClusterQuorum struct {
	// Instances is the replica count n.
	Instances int
	// Quorum is the required up count k (1 ≤ k ≤ n).
	Quorum int
}

// Validate checks the quorum shape.
func (q ClusterQuorum) Validate() error {
	if q.Instances < 1 {
		return fmt.Errorf("cluster of %d instances, want ≥ 1: %w", q.Instances, ErrBadConfig)
	}
	if q.Quorum < 1 || q.Quorum > q.Instances {
		return fmt.Errorf("quorum %d of %d instances: %w", q.Quorum, q.Instances, ErrBadConfig)
	}
	return nil
}

// instanceStructure builds the per-replica leaf: the single-instance AS
// model (3 states: working, short restart, long restart).
func instanceStructure(p Params) (*reward.Structure, error) {
	return BuildAppServer(p, 1)
}

// ClusterBayes builds the k-of-n quorum model as a Bayesian network: the
// per-instance 3-state submodel is solved exactly by the CTMC engine and
// its availability becomes each replica's basic-event prior; the quorum
// is a k-of-n gate with cost linear in n. A 100-instance farm solves in
// milliseconds where ClusterProduct stops at hier.MaxProductStates.
func ClusterBayes(p Params, q ClusterQuorum) (*bayes.Network, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	inst, err := instanceStructure(p)
	if err != nil {
		return nil, err
	}
	res, err := solvePooled(inst)
	if err != nil {
		return nil, fmt.Errorf("AS instance submodel: %w", err)
	}
	b := bayes.NewBuilder(fmt.Sprintf("AS cluster %d-of-%d", q.Quorum, q.Instances))
	replicas := make([]bayes.Node, q.Instances)
	for i := range replicas {
		replicas[i] = b.Basic(fmt.Sprintf("AS%d", i+1), res.Availability)
	}
	net, err := b.Build(b.KOfN("Quorum", q.Quorum, replicas...))
	if err != nil {
		return nil, fmt.Errorf("jsas: cluster compose: %w", err)
	}
	return net, nil
}

// ClusterProduct is the exact flat-CTMC alternative to ClusterBayes: the
// full cross-product of n independent 3-state instance chains with the
// quorum predicate as the reward structure. It is exact at any n the
// state space allows, but 3^n states hit hier.MaxProductStates around
// n = 12 — precisely the wall the BN backend exists to pass. Both
// backends being exact for independent replicas, they must agree to
// solver tolerance wherever ClusterProduct is tractable (the
// cross-validation suite enforces this).
func ClusterProduct(p Params, q ClusterQuorum) (*reward.Structure, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	inst, err := instanceStructure(p)
	if err != nil {
		return nil, err
	}
	components := make([]*reward.Structure, q.Instances)
	for i := range components {
		components[i] = inst
	}
	k := q.Quorum
	return hier.Product(components, func(up []bool) bool {
		got := 0
		for _, u := range up {
			if u {
				got++
			}
		}
		return got >= k
	})
}
