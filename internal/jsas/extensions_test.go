package jsas

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/ctmc"
	"repro/internal/sensitivity"
)

func TestIntervalAvailabilityBounds(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	steady, err := Solve(Config1, p)
	if err != nil {
		t.Fatal(err)
	}
	// Short mission from the working state: interval availability is
	// above steady state and below 1.
	short, err := IntervalAvailability(Config1, p, 24*time.Hour)
	if err != nil {
		t.Fatalf("IntervalAvailability(24h): %v", err)
	}
	if short.IntervalAvailability <= steady.Availability {
		t.Errorf("IA(24h) = %.9f should exceed steady %.9f",
			short.IntervalAvailability, steady.Availability)
	}
	if short.IntervalAvailability > 1 {
		t.Errorf("IA(24h) = %v > 1", short.IntervalAvailability)
	}
	if short.SteadyStateAvailability != steady.Availability {
		t.Error("steady-state mismatch in result")
	}
	if short.ExpectedDowntime < 0 || short.ExpectedDowntime > 24*time.Hour {
		t.Errorf("expected downtime %v out of range", short.ExpectedDowntime)
	}
}

func TestIntervalAvailabilityConvergesToSteadyState(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	steady, err := Solve(Config1, p)
	if err != nil {
		t.Fatal(err)
	}
	long, err := IntervalAvailability(Config1, p, 20*365*24*time.Hour)
	if err != nil {
		t.Fatalf("IntervalAvailability(20y): %v", err)
	}
	// Over 20 years the transient excess shrinks well below the
	// unavailability scale itself.
	gap := long.IntervalAvailability - steady.Availability
	if gap < 0 || gap > (1-steady.Availability)/2 {
		t.Errorf("IA(20y) − steady = %.3g, want small positive", gap)
	}
}

func TestIntervalAvailabilityMonotoneInMission(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	prev := 1.0
	for _, mission := range []time.Duration{
		6 * time.Hour, 48 * time.Hour, 30 * 24 * time.Hour, 365 * 24 * time.Hour,
	} {
		res, err := IntervalAvailability(Config1, p, mission)
		if err != nil {
			t.Fatalf("IntervalAvailability(%v): %v", mission, err)
		}
		if res.IntervalAvailability > prev+1e-12 {
			t.Errorf("IA(%v) = %.9f above previous %.9f (should decay)",
				mission, res.IntervalAvailability, prev)
		}
		prev = res.IntervalAvailability
	}
}

func TestIntervalAvailabilityValidation(t *testing.T) {
	t.Parallel()
	if _, err := IntervalAvailability(Config1, DefaultParams(), 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero mission: err = %v", err)
	}
	if _, err := IntervalAvailability(Config{}, DefaultParams(), time.Hour); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad config: err = %v", err)
	}
}

func TestPerformabilityBelowAvailability(t *testing.T) {
	t.Parallel()
	for _, n := range []int{2, 4} {
		res, err := SolveAppServerPerformability(DefaultParams(), n)
		if err != nil {
			t.Fatalf("SolveAppServerPerformability(%d): %v", n, err)
		}
		if res.ExpectedCapacity >= res.Availability {
			t.Errorf("n=%d: capacity %.9f should be below availability %.9f",
				n, res.ExpectedCapacity, res.Availability)
		}
		if res.CapacityLossMinutesPerYear <= 0 {
			t.Errorf("n=%d: capacity loss = %v, want > 0", n, res.CapacityLossMinutesPerYear)
		}
	}
}

// TestPerformabilityClosedForm2Instances: for n=2 the capacity reward is
// 1 in All_Work, 0.5 in the three one-down states, 0 in 2_Down, so
// E[capacity] = π_AllWork + 0.5(π_Rec+π_DS+π_DL).
func TestPerformabilityClosedForm2Instances(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	s, err := BuildAppServer(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	availRes, err := s.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Model()
	var halfMass, fullMass float64
	for _, st := range m.States() {
		switch m.Name(st) {
		case ASStateAllWork:
			fullMass = availRes.Pi[st]
		case as2Recovery, as2DownShort, as2DownLong:
			halfMass += availRes.Pi[st]
		}
	}
	want := fullMass + 0.5*halfMass
	res, err := SolveAppServerPerformability(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ExpectedCapacity-want) > 1e-12 {
		t.Errorf("capacity = %.12f, want %.12f", res.ExpectedCapacity, want)
	}
	// The hidden capacity loss dwarfs the availability-visible downtime:
	// one instance restarting costs half capacity but zero "downtime".
	availLoss := (1 - res.Availability) * 525600
	if res.CapacityLossMinutesPerYear < 10*availLoss {
		t.Errorf("capacity loss %.2f min/yr should dwarf availability loss %.2f",
			res.CapacityLossMinutesPerYear, availLoss)
	}
}

func TestPerformabilityValidation(t *testing.T) {
	t.Parallel()
	if _, err := BuildAppServerPerformability(DefaultParams(), 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("n=0: err = %v", err)
	}
	bad := DefaultParams()
	bad.FIR = 5
	if _, err := BuildAppServerPerformability(bad, 2); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad params: err = %v", err)
	}
}

// TestImportanceRanking: for Config 2 (HADB-dominated) the HADB and FIR
// parameters must outrank the AS-only parameters; Tstart_long must be
// essentially irrelevant (the flat Figure 6).
func TestImportanceRanking(t *testing.T) {
	t.Parallel()
	base := DefaultParams()
	entries, err := sensitivity.Importance(PaperImportanceRanges(base), ImportanceSolver(Config2, base))
	if err != nil {
		t.Fatalf("Importance: %v", err)
	}
	if len(entries) != 6 {
		t.Fatalf("entries = %d, want 6", len(entries))
	}
	rank := make(map[string]int, len(entries))
	swing := make(map[string]float64, len(entries))
	for i, e := range entries {
		rank[e.Name] = i
		swing[e.Name] = e.Swing
	}
	if rank[ParamFIR] > 1 {
		t.Errorf("FIR rank = %d, want top-2 for Config 2 (swings: %v)", rank[ParamFIR], swing)
	}
	if rank[ParamTstartLong] < 4 {
		t.Errorf("Tstart_long rank = %d, want near-last for Config 2", rank[ParamTstartLong])
	}
	if math.Abs(swing[ParamTstartLong]) > 1e-3 {
		t.Errorf("Tstart_long swing = %v, want ~0", swing[ParamTstartLong])
	}
}

// TestImportanceConfig1TstartLongMatters: for Config 1 the paper sweeps
// Tstart_long precisely because it moves availability; its swing must be
// material (≈ 3.4 min across 0.5–3 h per Figure 5).
func TestImportanceConfig1TstartLongMatters(t *testing.T) {
	t.Parallel()
	base := DefaultParams()
	entries, err := sensitivity.Importance(PaperImportanceRanges(base), ImportanceSolver(Config1, base))
	if err != nil {
		t.Fatalf("Importance: %v", err)
	}
	for _, e := range entries {
		if e.Name != ParamTstartLong {
			continue
		}
		if e.Swing < 2 || e.Swing > 5 {
			t.Errorf("Tstart_long swing = %.2f min, want ~3.4 (Figure 5 span)", e.Swing)
		}
		return
	}
	t.Fatal("Tstart_long missing from importance entries")
}

func TestImportanceValidation(t *testing.T) {
	t.Parallel()
	solver := ImportanceSolver(Config1, DefaultParams())
	if _, err := sensitivity.Importance(nil, solver); !errors.Is(err, sensitivity.ErrBadSweep) {
		t.Errorf("no params: err = %v", err)
	}
	if _, err := sensitivity.Importance(PaperImportanceRanges(DefaultParams()), nil); !errors.Is(err, sensitivity.ErrBadSweep) {
		t.Errorf("nil solver: err = %v", err)
	}
	bad := []sensitivity.ImportanceRange{{Name: "x", Base: 5, Low: 0, High: 1}}
	if _, err := sensitivity.Importance(bad, solver); !errors.Is(err, sensitivity.ErrBadSweep) {
		t.Errorf("base outside range: err = %v", err)
	}
	dup := []sensitivity.ImportanceRange{
		{Name: "x", Base: 0.5, Low: 0, High: 1},
		{Name: "x", Base: 0.5, Low: 0, High: 1},
	}
	if _, err := sensitivity.Importance(dup, solver); !errors.Is(err, sensitivity.ErrBadSweep) {
		t.Errorf("duplicate: err = %v", err)
	}
}

func TestPerformabilityErrorPaths(t *testing.T) {
	t.Parallel()
	bad := DefaultParams()
	bad.SessionRecovery = 0
	if _, err := SolveAppServerPerformability(bad, 2); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad params: err = %v", err)
	}
	if _, err := SolveAppServerPerformability(DefaultParams(), 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("n=0: err = %v", err)
	}
	// 1-instance performability: capacity == availability (no degraded
	// partial-capacity states: the instance is either serving or not).
	res, err := SolveAppServerPerformability(DefaultParams(), 1)
	if err != nil {
		t.Fatalf("SolveAppServerPerformability(1): %v", err)
	}
	if math.Abs(res.ExpectedCapacity-res.Availability) > 1e-12 {
		t.Errorf("n=1: capacity %v != availability %v", res.ExpectedCapacity, res.Availability)
	}
}

func TestUncertaintySolverUnknownName(t *testing.T) {
	t.Parallel()
	solver := UncertaintySolver(Config1, DefaultParams())
	if _, err := solver(map[string]float64{"nope": 1}); err == nil {
		t.Error("unknown parameter accepted")
	}
}

func TestFractionShortStartZeroRates(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	p.ASFailuresPerYear = 0
	p.ASOSFailuresPerYear = 0
	p.ASHWFailuresPerYear = 0
	if got := p.fractionShortStart(); got != 0 {
		t.Errorf("fractionShortStart with zero rates = %v, want 0", got)
	}
}
