package jsas

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/ctmc"
	"repro/internal/hier"
	"repro/internal/reward"
)

func TestDefaultParamsValid(t *testing.T) {
	t.Parallel()
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
}

func TestParamsValidateCatchesBadValues(t *testing.T) {
	t.Parallel()
	mods := []struct {
		name string
		mod  func(*Params)
	}{
		{"negative HADB rate", func(p *Params) { p.HADBFailuresPerYear = -1 }},
		{"FIR ≥ 1", func(p *Params) { p.FIR = 1 }},
		{"negative FIR", func(p *Params) { p.FIR = -0.1 }},
		{"zero restart", func(p *Params) { p.ASRestartShort = 0 }},
		{"zero repair", func(p *Params) { p.HADBRepair = 0 }},
		{"acceleration < 1", func(p *Params) { p.Acceleration = 0.5 }},
		{"zero session recovery", func(p *Params) { p.SessionRecovery = 0 }},
		{"zero restore", func(p *Params) { p.HADBRestore = 0 }},
	}
	for _, tc := range mods {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			p := DefaultParams()
			tc.mod(&p)
			if err := p.Validate(); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestConfigValidate(t *testing.T) {
	t.Parallel()
	if err := (Config{ASInstances: 0}).Validate(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("0 instances: err = %v", err)
	}
	if err := (Config{ASInstances: 1, HADBPairs: -1}).Validate(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative pairs: err = %v", err)
	}
	if err := Config1.Validate(); err != nil {
		t.Errorf("Config1 invalid: %v", err)
	}
}

// TestHADBPairYearlyDowntime: the paper attributes ~0.575 min/yr of system
// downtime to each HADB pair (1.15 min for the 2 pairs of Config 1).
func TestHADBPairYearlyDowntime(t *testing.T) {
	t.Parallel()
	s, err := BuildHADBPair(DefaultParams())
	if err != nil {
		t.Fatalf("BuildHADBPair: %v", err)
	}
	res, err := s.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	yd := res.YearlyDowntimeMinutes
	if yd < 0.5 || yd > 0.65 {
		t.Errorf("per-pair YD = %.3f min/yr, want ~0.575", yd)
	}
}

// TestHADBPairStates verifies the Figure 3 state space.
func TestHADBPairStates(t *testing.T) {
	t.Parallel()
	s, err := BuildHADBPair(DefaultParams())
	if err != nil {
		t.Fatalf("BuildHADBPair: %v", err)
	}
	m := s.Model()
	if m.NumStates() != 6 {
		t.Errorf("states = %d, want 6", m.NumStates())
	}
	for _, name := range []string{
		HADBStateOk, HADBStateRestartShort, HADBStateRestartLong,
		HADBStateRepair, HADBStateMaintenance, HADBStateDown,
	} {
		if _, err := m.StateByName(name); err != nil {
			t.Errorf("missing state %q", name)
		}
	}
	// Only 2_Down is a failure state.
	down := s.DownStates()
	if len(down) != 1 {
		t.Errorf("down states = %d, want 1", len(down))
	}
}

// TestHADBZeroFIR: with perfect coverage the only path to 2_Down is a
// second failure during recovery/maintenance; downtime drops sharply.
func TestHADBZeroFIR(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	base, err := BuildHADBPair(p)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := base.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.FIR = 0
	perfect, err := BuildHADBPair(p)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := perfect.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pres.YearlyDowntimeMinutes >= bres.YearlyDowntimeMinutes/3 {
		t.Errorf("FIR=0 downtime %.4f should be far below default %.4f",
			pres.YearlyDowntimeMinutes, bres.YearlyDowntimeMinutes)
	}
}

// TestAS2MatchesFigure4 verifies the 2-instance model has exactly the
// Figure 4 state space and transition structure.
func TestAS2MatchesFigure4(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	s, err := BuildAppServer(p, 2)
	if err != nil {
		t.Fatalf("BuildAppServer(2): %v", err)
	}
	m := s.Model()
	if m.NumStates() != 5 {
		t.Fatalf("states = %d, want 5 (Figure 4)", m.NumStates())
	}
	mustState := func(name string) ctmc.State {
		st, err := m.StateByName(name)
		if err != nil {
			t.Fatalf("missing state %q", name)
		}
		return st
	}
	allWork := mustState(ASStateAllWork)
	rec := mustState(as2Recovery)
	short := mustState(as2DownShort)
	long := mustState(as2DownLong)
	down := mustState(ASStateAllDown)

	la := p.asInstanceFailurePerHour()
	fss := p.fractionShortStart()
	checks := []struct {
		name     string
		from, to ctmc.State
		want     float64
	}{
		{"All_Work→Recovery = 2λ", allWork, rec, 2 * la},
		{"Recovery→1DownShort = FSS/Trec", rec, short, fss / p.SessionRecovery.Hours()},
		{"Recovery→1DownLong = (1-FSS)/Trec", rec, long, (1 - fss) / p.SessionRecovery.Hours()},
		{"1DownShort→All_Work = 1/Tss", short, allWork, 1 / p.ASRestartShort.Hours()},
		{"1DownLong→All_Work = 1/Tsl", long, allWork, 1 / p.ASRestartLong.Hours()},
		{"Recovery→Down = Acc·λ", rec, down, 2 * la},
		{"1DownShort→Down = Acc·λ", short, down, 2 * la},
		{"1DownLong→Down = Acc·λ", long, down, 2 * la},
		{"Down→All_Work = 1/Tstart_all", down, allWork, 1 / p.ASRestoreAll.Hours()},
	}
	for _, c := range checks {
		got := m.Rate(c.from, c.to)
		if math.Abs(got-c.want) > 1e-12*math.Max(1, c.want) {
			t.Errorf("%s: rate = %g, want %g", c.name, got, c.want)
		}
	}
}

// TestAS2YearlyDowntime: the paper's Config 1 attributes 2.35 min/yr to
// the 2-instance AS submodel.
func TestAS2YearlyDowntime(t *testing.T) {
	t.Parallel()
	s, err := BuildAppServer(DefaultParams(), 2)
	if err != nil {
		t.Fatalf("BuildAppServer: %v", err)
	}
	res, err := s.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.YearlyDowntimeMinutes < 2.2 || res.YearlyDowntimeMinutes > 2.5 {
		t.Errorf("AS2 YD = %.3f min/yr, want ~2.35", res.YearlyDowntimeMinutes)
	}
}

// TestAS1MatchesTable3Row1: 1 instance → 195 min/yr, MTBF 168 h,
// availability 99.9629%.
func TestAS1MatchesTable3Row1(t *testing.T) {
	t.Parallel()
	s, err := BuildAppServer(DefaultParams(), 1)
	if err != nil {
		t.Fatalf("BuildAppServer(1): %v", err)
	}
	res, err := s.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(res.YearlyDowntimeMinutes-195) > 1 {
		t.Errorf("YD = %.1f min/yr, want ~195", res.YearlyDowntimeMinutes)
	}
	if math.Abs(res.MTBFHours-168) > 1.5 {
		t.Errorf("MTBF = %.1f h, want ~168", res.MTBFHours)
	}
	if math.Abs(res.Availability-0.999629) > 3e-6 {
		t.Errorf("availability = %.6f, want ~0.999629", res.Availability)
	}
}

// TestAS4DowntimeNegligible: the paper reports the 4-instance AS submodel
// contributes ~0.01 s/yr.
func TestAS4DowntimeNegligible(t *testing.T) {
	t.Parallel()
	s, err := BuildAppServer(DefaultParams(), 4)
	if err != nil {
		t.Fatalf("BuildAppServer(4): %v", err)
	}
	res, err := s.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	seconds := res.YearlyDowntimeMinutes * 60
	if seconds > 0.1 {
		t.Errorf("AS4 YD = %.4f s/yr, want ≲ 0.01 s (paper: 0.01 s)", seconds)
	}
}

func TestBuildAppServerErrors(t *testing.T) {
	t.Parallel()
	if _, err := BuildAppServer(DefaultParams(), 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("n=0: err = %v", err)
	}
	bad := DefaultParams()
	bad.FIR = 2
	if _, err := BuildAppServer(bad, 2); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad params: err = %v", err)
	}
	if _, err := BuildHADBPair(bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad params HADB: err = %v", err)
	}
}

// TestTable2Config1 reproduces the paper's Table 2 Config 1 row:
// availability 99.99933%, YD 3.5 min (2.35 AS + 1.15 HADB, 67%/33%).
func TestTable2Config1(t *testing.T) {
	t.Parallel()
	res, err := Solve(Config1, DefaultParams())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(res.YearlyDowntimeMinutes-3.5) > 0.15 {
		t.Errorf("YD = %.3f min, want 3.5 ± 0.15", res.YearlyDowntimeMinutes)
	}
	if math.Abs(res.Availability-0.9999933) > 5e-7 {
		t.Errorf("availability = %.7f, want ~0.9999933", res.Availability)
	}
	if math.Abs(res.DowntimeASMinutes-2.35) > 0.1 {
		t.Errorf("AS share = %.3f min, want ~2.35", res.DowntimeASMinutes)
	}
	if math.Abs(res.DowntimeHADBMinutes-1.15) > 0.1 {
		t.Errorf("HADB share = %.3f min, want ~1.15", res.DowntimeHADBMinutes)
	}
	asFrac := res.DowntimeASMinutes / res.YearlyDowntimeMinutes
	if math.Abs(asFrac-0.67) > 0.03 {
		t.Errorf("AS fraction = %.3f, want ~0.67", asFrac)
	}
	// MTBF ≈ 89,980 h (Table 3 row 2).
	if math.Abs(res.MTBFHours-89980) > 2500 {
		t.Errorf("MTBF = %.0f h, want ~89,980", res.MTBFHours)
	}
}

// TestTable2Config2 reproduces Table 2 Config 2: availability 99.99956%,
// YD 2.3 min, HADB-dominated (99.99%).
func TestTable2Config2(t *testing.T) {
	t.Parallel()
	res, err := Solve(Config2, DefaultParams())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(res.YearlyDowntimeMinutes-2.3) > 0.12 {
		t.Errorf("YD = %.3f min, want 2.3 ± 0.12", res.YearlyDowntimeMinutes)
	}
	if math.Abs(res.Availability-0.9999956) > 4e-7 {
		t.Errorf("availability = %.7f, want ~0.9999956", res.Availability)
	}
	if res.DowntimeASMinutes*60 > 0.1 {
		t.Errorf("AS share = %.4f s, want ~0.01 s", res.DowntimeASMinutes*60)
	}
	hadbFrac := res.DowntimeHADBMinutes / res.YearlyDowntimeMinutes
	if hadbFrac < 0.999 {
		t.Errorf("HADB fraction = %.5f, want > 0.999", hadbFrac)
	}
	// MTBF ≈ 229,326 h.
	if math.Abs(res.MTBFHours-229326) > 9000 {
		t.Errorf("MTBF = %.0f h, want ~229,326", res.MTBFHours)
	}
}

// TestTable3AllRows reproduces the paper's Table 3 comparison.
func TestTable3AllRows(t *testing.T) {
	t.Parallel()
	want := []struct {
		cfg       Config
		ydMin     float64
		ydTol     float64
		mtbfHours float64
		mtbfTol   float64
	}{
		{Config{ASInstances: 1, HADBPairs: 0}, 195, 2, 168, 2},
		{Config{ASInstances: 2, HADBPairs: 2, HADBSpares: 2}, 3.49, 0.15, 89980, 2500},
		{Config{ASInstances: 4, HADBPairs: 4, HADBSpares: 2}, 2.29, 0.12, 229326, 9000},
		{Config{ASInstances: 6, HADBPairs: 6, HADBSpares: 2}, 3.44, 0.15, 152889, 6000},
		{Config{ASInstances: 8, HADBPairs: 8, HADBSpares: 2}, 4.58, 0.2, 114669, 4500},
		{Config{ASInstances: 10, HADBPairs: 10, HADBSpares: 2}, 5.73, 0.25, 91736, 3600},
	}
	for _, row := range want {
		row := row
		t.Run(row.cfg.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Solve(row.cfg, DefaultParams())
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if math.Abs(res.YearlyDowntimeMinutes-row.ydMin) > row.ydTol {
				t.Errorf("YD = %.3f min, want %.2f ± %.2f", res.YearlyDowntimeMinutes, row.ydMin, row.ydTol)
			}
			if math.Abs(res.MTBFHours-row.mtbfHours) > row.mtbfTol {
				t.Errorf("MTBF = %.0f h, want %.0f ± %.0f", res.MTBFHours, row.mtbfHours, row.mtbfTol)
			}
		})
	}
}

// TestOptimalConfiguration: the paper concludes 4 AS + 4 pairs is optimal.
func TestOptimalConfiguration(t *testing.T) {
	t.Parallel()
	best := -1
	bestAvail := 0.0
	configs := Table3Configs()
	for i, cfg := range configs {
		res, err := Solve(cfg, DefaultParams())
		if err != nil {
			t.Fatalf("Solve(%v): %v", cfg, err)
		}
		if res.Availability > bestAvail {
			bestAvail, best = res.Availability, i
		}
	}
	if configs[best].ASInstances != 4 {
		t.Errorf("optimal config = %v, want the 4-instance row", configs[best])
	}
}

// TestFiveNinesBoundary: the paper notes 99.999%% no longer holds at 10
// HADB pairs.
func TestFiveNinesBoundary(t *testing.T) {
	t.Parallel()
	res4, err := Solve(Config{ASInstances: 4, HADBPairs: 4, HADBSpares: 2}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res4.Availability < 0.99999 {
		t.Errorf("4-pair config availability %.7f should be ≥ 5 nines", res4.Availability)
	}
	res10, err := Solve(Config{ASInstances: 10, HADBPairs: 10, HADBSpares: 2}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res10.Availability >= 0.99999 {
		t.Errorf("10-pair config availability %.7f should be < 5 nines", res10.Availability)
	}
}

// TestGeneralizedASReducesToPaperModel: solving the generalized builder
// with n=2 must agree with a hand-built Figure 4 chain.
func TestGeneralizedASReducesToPaperModel(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	gen, err := BuildAppServer(p, 2)
	if err != nil {
		t.Fatalf("BuildAppServer: %v", err)
	}
	gres, err := gen.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Hand-built Figure 4.
	la := p.asInstanceFailurePerHour()
	fss := p.fractionShortStart()
	b := ctmc.NewBuilder()
	aw := b.State("All_Work")
	rec := b.State("Recovery")
	ds := b.State("1DownShort")
	dl := b.State("1DownLong")
	dn := b.State("2_Down")
	b.Transition(aw, rec, 2*la)
	b.Transition(rec, ds, fss/p.SessionRecovery.Hours())
	b.Transition(rec, dl, (1-fss)/p.SessionRecovery.Hours())
	b.Transition(ds, aw, 1/p.ASRestartShort.Hours())
	b.Transition(dl, aw, 1/p.ASRestartLong.Hours())
	b.Transition(rec, dn, 2*la)
	b.Transition(ds, dn, 2*la)
	b.Transition(dl, dn, 2*la)
	b.Transition(dn, aw, 1/p.ASRestoreAll.Hours())
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s, err := reward.Binary(m, "2_Down")
	if err != nil {
		t.Fatalf("Binary: %v", err)
	}
	pres, err := s.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(gres.Availability-pres.Availability) > 1e-14 {
		t.Errorf("generalized %.15f != paper %.15f", gres.Availability, pres.Availability)
	}
	if math.Abs(gres.FailureFrequency-pres.FailureFrequency) > 1e-18 {
		t.Errorf("failure frequency mismatch: %g vs %g", gres.FailureFrequency, pres.FailureFrequency)
	}
}

// TestMoreInstancesLowerASDowntime: adding instances monotonically reduces
// the AS submodel downtime.
func TestMoreInstancesLowerASDowntime(t *testing.T) {
	t.Parallel()
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 3, 4, 5} {
		s, err := BuildAppServer(DefaultParams(), n)
		if err != nil {
			t.Fatalf("BuildAppServer(%d): %v", n, err)
		}
		res, err := s.Solve(ctmc.SolveOptions{})
		if err != nil {
			t.Fatalf("Solve(%d): %v", n, err)
		}
		if res.YearlyDowntimeMinutes >= prev {
			t.Errorf("n=%d YD %.6g not below n−1's %.6g", n, res.YearlyDowntimeMinutes, prev)
		}
		prev = res.YearlyDowntimeMinutes
	}
}

// TestHADBDowntimeScalesLinearly: per the paper, each extra HADB pair adds
// ~0.575 min/yr.
func TestHADBDowntimeScalesLinearly(t *testing.T) {
	t.Parallel()
	base, err := Solve(Config{ASInstances: 4, HADBPairs: 4, HADBSpares: 2}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	double, err := Solve(Config{ASInstances: 4, HADBPairs: 8, HADBSpares: 2}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ratio := double.DowntimeHADBMinutes / base.DowntimeHADBMinutes
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("HADB downtime ratio = %.4f, want ~2", ratio)
	}
}

func TestComponentsValidation(t *testing.T) {
	t.Parallel()
	if _, err := Components(Config{}, DefaultParams()); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad config: err = %v", err)
	}
	bad := DefaultParams()
	bad.Acceleration = 0
	if _, err := Components(Config1, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad params: err = %v", err)
	}
}

func TestSolveNoHADB(t *testing.T) {
	t.Parallel()
	res, err := Solve(Config{ASInstances: 2, HADBPairs: 0}, DefaultParams())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.DowntimeHADBMinutes != 0 {
		t.Errorf("HADB share = %v, want 0", res.DowntimeHADBMinutes)
	}
	if res.HADBSubmodel != nil {
		t.Error("HADBSubmodel should be nil without pairs")
	}
	if res.ASSubmodel == nil {
		t.Error("ASSubmodel missing")
	}
}

// TestHierarchyVsFlatJSAS quantifies the paper's hierarchical approximation
// against the exact flat product model for Config 1. The relative error on
// unavailability must be small (< 2%).
func TestHierarchyVsFlatJSAS(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	hierRes, err := Solve(Config1, p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	asS, err := BuildAppServer(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	pairS, err := BuildHADBPair(p)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := hier.Product(
		[]*reward.Structure{asS, pairS, pairS},
		func(up []bool) bool { return up[0] && up[1] && up[2] },
	)
	if err != nil {
		t.Fatalf("Product: %v", err)
	}
	fres, err := flat.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve flat: %v", err)
	}
	uh := 1 - hierRes.Availability
	uf := 1 - fres.Availability
	rel := math.Abs(uh-uf) / uf
	if rel > 0.02 {
		t.Errorf("hierarchy error %.4f > 2%% (hier %.3g, flat %.3g)", rel, uh, uf)
	}
}

// TestSweepTstartLong reproduces the shape of Figures 5/6: Config 1 drops
// below five nines somewhere between 2 and 3 hours; Config 2 stays above
// 99.9995% even at 3 hours.
func TestSweepTstartLong(t *testing.T) {
	t.Parallel()
	solveAt := func(cfg Config, tl time.Duration) float64 {
		p := DefaultParams()
		p.ASRestartLong = tl
		res, err := Solve(cfg, p)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		return res.Availability
	}
	// Config 1 at 0.5 h is above 5 nines; at 3 h it is below.
	if a := solveAt(Config1, 30*time.Minute); a < 0.99999 {
		t.Errorf("Config1 @0.5h = %.7f, want ≥ 0.99999", a)
	}
	if a := solveAt(Config1, 3*time.Hour); a >= 0.99999 {
		t.Errorf("Config1 @3h = %.7f, want < 0.99999", a)
	}
	// Paper: five nines lost around 2.5 h.
	if a := solveAt(Config1, 150*time.Minute); math.Abs(a-0.99999) > 2e-6 {
		t.Logf("Config1 @2.5h = %.7f (paper: crossing point)", a)
	}
	// Config 2 retains 99.9995% at 3 h.
	if a := solveAt(Config2, 3*time.Hour); a < 0.999995 {
		t.Errorf("Config2 @3h = %.7f, want ≥ 0.999995", a)
	}
	// Config 2 is almost insensitive (Figure 6's flat curve).
	a05 := solveAt(Config2, 30*time.Minute)
	a3 := solveAt(Config2, 3*time.Hour)
	if math.Abs(a05-a3) > 1e-8 {
		t.Errorf("Config2 sensitivity = %.3g, want < 1e-8", math.Abs(a05-a3))
	}
}

// TestVeryWideClusterSolvable: for ≥ 12 instances the AS submodel's
// equivalent failure rate underflows to zero; the top-level model must
// omit the unreachable AS_Fail branch instead of failing as reducible.
func TestVeryWideClusterSolvable(t *testing.T) {
	t.Parallel()
	for _, n := range []int{12, 16} {
		res, err := Solve(Config{ASInstances: n, HADBPairs: n / 2, HADBSpares: 2}, DefaultParams())
		if err != nil {
			t.Fatalf("Solve(%d instances): %v", n, err)
		}
		if res.DowntimeASMinutes != 0 {
			t.Errorf("n=%d: AS downtime = %v, want 0 (underflow)", n, res.DowntimeASMinutes)
		}
		if res.DowntimeHADBMinutes <= 0 {
			t.Errorf("n=%d: HADB downtime = %v, want > 0", n, res.DowntimeHADBMinutes)
		}
	}
}

// TestAccelerationAblation quantifies the paper's workload-dependency
// assumption (§4: failure rate doubles after each failure). Turning the
// acceleration off (Acc = 1) roughly halves the second-failure paths:
// the AS submodel's downtime drops by ~50%, and system downtime follows.
func TestAccelerationAblation(t *testing.T) {
	t.Parallel()
	base := DefaultParams()
	noAcc := base
	noAcc.Acceleration = 1
	withRes, err := Solve(Config1, base)
	if err != nil {
		t.Fatal(err)
	}
	withoutRes, err := Solve(Config1, noAcc)
	if err != nil {
		t.Fatal(err)
	}
	if withoutRes.YearlyDowntimeMinutes >= withRes.YearlyDowntimeMinutes {
		t.Errorf("Acc=1 downtime %.3f should be below Acc=2's %.3f",
			withoutRes.YearlyDowntimeMinutes, withRes.YearlyDowntimeMinutes)
	}
	asRatio := withoutRes.DowntimeASMinutes / withRes.DowntimeASMinutes
	if asRatio < 0.4 || asRatio > 0.6 {
		t.Errorf("AS downtime ratio Acc=1/Acc=2 = %.3f, want ~0.5", asRatio)
	}
	// The conservative (accelerated) assumption costs about a minute of
	// modeled downtime per year for Config 1.
	delta := withRes.YearlyDowntimeMinutes - withoutRes.YearlyDowntimeMinutes
	if delta < 0.5 || delta > 2 {
		t.Errorf("acceleration premium = %.3f min/yr, want O(1 min)", delta)
	}
}

// TestHADBMatchesFigure3 verifies the HADB pair model transition-by-
// transition against the paper's Figure 3.
func TestHADBMatchesFigure3(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	s, err := BuildHADBPair(p)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Model()
	mustState := func(name string) ctmc.State {
		st, err := m.StateByName(name)
		if err != nil {
			t.Fatalf("missing state %q", name)
		}
		return st
	}
	ok := mustState(HADBStateOk)
	rs := mustState(HADBStateRestartShort)
	rl := mustState(HADBStateRestartLong)
	rep := mustState(HADBStateRepair)
	mnt := mustState(HADBStateMaintenance)
	down := mustState(HADBStateDown)
	const perHour = 1.0 / 8760
	la := (p.HADBFailuresPerYear + p.HADBOSFailuresPerYear + p.HADBHWFailuresPerYear) * perHour
	checks := []struct {
		name     string
		from, to ctmc.State
		want     float64
	}{
		{"Ok→RestartShort = 2·La_hadb·(1−FIR)", ok, rs, 2 * p.HADBFailuresPerYear * perHour * (1 - p.FIR)},
		{"Ok→RestartLong = 2·La_os·(1−FIR)", ok, rl, 2 * p.HADBOSFailuresPerYear * perHour * (1 - p.FIR)},
		{"Ok→Repair = 2·La_hw·(1−FIR)", ok, rep, 2 * p.HADBHWFailuresPerYear * perHour * (1 - p.FIR)},
		{"Ok→Maintenance = La_mnt", ok, mnt, p.MaintenancePerYear * perHour},
		{"Ok→2_Down = 2·La·FIR", ok, down, 2 * la * p.FIR},
		{"RestartShort→Ok = 1/Tstart_short", rs, ok, 1 / p.HADBRestartShort.Hours()},
		{"RestartLong→Ok = 1/Tstart_long", rl, ok, 1 / p.HADBRestartLong.Hours()},
		{"Repair→Ok = 1/Trepair", rep, ok, 1 / p.HADBRepair.Hours()},
		{"Maintenance→Ok = 1/Tmnt", mnt, ok, 1 / p.MaintenanceSwitchover.Hours()},
		{"RestartShort→2_Down = Acc·La", rs, down, p.Acceleration * la},
		{"RestartLong→2_Down = Acc·La", rl, down, p.Acceleration * la},
		{"Repair→2_Down = Acc·La", rep, down, p.Acceleration * la},
		{"Maintenance→2_Down = Acc·La", mnt, down, p.Acceleration * la},
		{"2_Down→Ok = 1/Trestore", down, ok, 1 / p.HADBRestore.Hours()},
	}
	for _, c := range checks {
		got := m.Rate(c.from, c.to)
		if math.Abs(got-c.want) > 1e-15*math.Max(1, c.want) {
			t.Errorf("%s: rate = %g, want %g", c.name, got, c.want)
		}
	}
	// No other transitions exist.
	if m.NumTransitions() != len(checks) {
		t.Errorf("transitions = %d, want %d", m.NumTransitions(), len(checks))
	}
}
