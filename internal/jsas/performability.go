package jsas

import (
	"fmt"
	"math"

	"repro/internal/ctmc"
	"repro/internal/reward"
)

// BuildAppServerPerformability constructs the Application Server cluster
// model with capacity rewards instead of 0/1 availability rewards: a state
// with d instances down earns reward (n−d)/n, and the session-recovery
// phase is treated as degraded (the paper notes Recovery "could be a
// degraded state in performability modeling").
//
// The expected steady-state reward of this structure is the long-run
// fraction of nominal cluster capacity actually delivered — a measure the
// 0/1 availability number hides (a 2-instance cluster that is "available"
// while one instance restarts is serving at half capacity).
func BuildAppServerPerformability(p Params, n int) (*reward.Structure, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("instance count %d, want ≥ 1: %w", n, ErrBadConfig)
	}
	base, err := BuildAppServer(p, n)
	if err != nil {
		return nil, err
	}
	m := base.Model()
	rates := make([]float64, m.NumStates())
	for _, s := range m.States() {
		d, err := downCountOf(m.Name(s), n)
		if err != nil {
			return nil, err
		}
		rates[s] = float64(n-d) / float64(n)
	}
	return reward.New(m, rates)
}

// downCountOf decodes the number of down instances from a state name
// produced by BuildAppServer.
func downCountOf(name string, n int) (int, error) {
	switch name {
	case ASStateAllWork:
		return 0, nil
	case ASStateAllDown:
		return n, nil
	case as2Recovery, as2DownShort, as2DownLong:
		return 1, nil
	}
	// Systematic names: R<r>S<s>L<l>.
	var r, s, l int
	if _, err := fmt.Sscanf(name, "R%dS%dL%d", &r, &s, &l); err != nil {
		return 0, fmt.Errorf("unrecognized AS state %q: %w", name, ErrBadConfig)
	}
	return r + s + l, nil
}

// PerformabilityResult pairs availability with delivered capacity.
type PerformabilityResult struct {
	// Availability is the 0/1-reward steady-state availability.
	Availability float64
	// ExpectedCapacity is the capacity-reward steady-state expectation
	// (fraction of nominal throughput delivered long-run).
	ExpectedCapacity float64
	// CapacityLossMinutesPerYear expresses 1−ExpectedCapacity as
	// equivalent full-outage minutes per year: the "hidden" downtime that
	// availability alone does not charge.
	CapacityLossMinutesPerYear float64
}

// SolveAppServerPerformability solves both reward structures for an
// n-instance cluster.
func SolveAppServerPerformability(p Params, n int) (*PerformabilityResult, error) {
	availS, err := BuildAppServer(p, n)
	if err != nil {
		return nil, err
	}
	availRes, err := availS.Solve(ctmc.SolveOptions{})
	if err != nil {
		return nil, err
	}
	perfS, err := BuildAppServerPerformability(p, n)
	if err != nil {
		return nil, err
	}
	perfRes, err := perfS.Solve(ctmc.SolveOptions{})
	if err != nil {
		return nil, err
	}
	loss := math.Max(0, 1-perfRes.ExpectedReward)
	return &PerformabilityResult{
		Availability:               availRes.Availability,
		ExpectedCapacity:           perfRes.ExpectedReward,
		CapacityLossMinutesPerYear: loss * reward.MinutesPerYear,
	}, nil
}
