package jsas

import (
	"fmt"
	"sync"

	"repro/internal/ctmc"
	"repro/internal/hier"
	"repro/internal/reward"
)

// Top-level system model state names (Figure 2 of the paper).
const (
	SystemStateOk       = "Ok"
	SystemStateASFail   = "AS_Fail"
	SystemStateHADBFail = "HADB_Fail"
	// SystemStateCCFail is the beta-factor common-cause failure state,
	// present only when Params.Beta > 0.
	SystemStateCCFail = "CC_Fail"
)

// SystemResult aggregates the solved measures for one configuration —
// one row of the paper's Table 2 / Table 3.
type SystemResult struct {
	Config Config
	// Availability is the steady-state system availability.
	Availability float64
	// YearlyDowntimeMinutes is total expected downtime per (365-day) year.
	YearlyDowntimeMinutes float64
	// DowntimeASMinutes is the share of yearly downtime attributed to the
	// Application Server submodel (state AS_Fail).
	DowntimeASMinutes float64
	// DowntimeHADBMinutes is the share attributed to the HADB submodel.
	DowntimeHADBMinutes float64
	// DowntimeCommonCauseMinutes is the share attributed to the
	// beta-factor common-cause state (0 when Params.Beta == 0).
	DowntimeCommonCauseMinutes float64
	// MTBFHours is the mean time between system failures.
	MTBFHours float64
	// ASSubmodel and HADBSubmodel carry the solved submodel measures
	// (HADBSubmodel is nil when the configuration has no HADB pairs).
	ASSubmodel   *reward.Result
	HADBSubmodel *reward.Result
	// System carries the top-level model measures.
	System *reward.Result
}

// Components returns the hierarchical model for a configuration, with the
// Application Server and HADB node-pair submodels bound into the Figure 2
// top-level diagram via their equivalent (λ, μ) rates.
func Components(cfg Config, p Params) (*hier.Component, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	as := hier.NewComponent("Appl Server", func(hier.Params) (*reward.Structure, error) {
		return BuildAppServer(p, cfg.ASInstances)
	})
	top := hier.NewComponent("JSAS", func(env hier.Params) (*reward.Structure, error) {
		return buildTopModel(cfg, p, env)
	})
	top.Use(as, "La_appl", "Mu_appl")
	if cfg.HADBPairs > 0 {
		hadb := hier.NewComponent("HADB Node Pair", func(hier.Params) (*reward.Structure, error) {
			return BuildHADBPair(p)
		})
		top.Use(hadb, "La_hadb", "Mu_hadb")
	}
	return top, nil
}

// buildTopModel assembles the Figure 2 diagram (3 states, plus a
// common-cause state when p.Beta > 0) from the submodel equivalent rates
// bound in env.
func buildTopModel(cfg Config, p Params, env hier.Params) (*reward.Structure, error) {
	laAppl, ok := env["La_appl"]
	if !ok {
		return nil, fmt.Errorf("missing La_appl binding: %w", ErrBadConfig)
	}
	muAppl := env["Mu_appl"]
	b := ctmc.NewBuilder()
	okState := b.State(SystemStateOk)
	var downNames []string
	// Total independent top-level failure rate — the base the beta-factor
	// mode scales from.
	totalInd := 0.0
	// A submodel whose equivalent failure rate underflows to zero (e.g. a
	// very wide AS cluster) contributes no failure state: adding one would
	// leave it unreachable and the chain reducible.
	if laAppl > 0 && muAppl > 0 {
		asFail := b.State(SystemStateASFail)
		b.Transition(okState, asFail, laAppl)
		b.Transition(asFail, okState, muAppl)
		downNames = append(downNames, SystemStateASFail)
		totalInd += laAppl
	}
	if cfg.HADBPairs > 0 {
		laHADB, okh := env["La_hadb"]
		if !okh {
			return nil, fmt.Errorf("missing La_hadb binding: %w", ErrBadConfig)
		}
		muHADB := env["Mu_hadb"]
		if laHADB > 0 && muHADB > 0 {
			hadbFail := b.State(SystemStateHADBFail)
			b.Transition(okState, hadbFail, float64(cfg.HADBPairs)*laHADB)
			b.Transition(hadbFail, okState, muHADB)
			downNames = append(downNames, SystemStateHADBFail)
			totalInd += float64(cfg.HADBPairs) * laHADB
		}
	}
	if p.Beta > 0 && totalInd > 0 {
		// Beta-factor common-cause mode: a shared failure (power domain,
		// switch, bad push) takes the whole system down at rate
		// La_cc = Beta/(1−Beta) · La_independent, so a fraction Beta of
		// system failures arrive via the shared cause — matching the
		// common-cause fraction a correlated injection campaign measures.
		laCC := p.Beta / (1 - p.Beta) * totalInd
		muCC := 1 / p.CommonCauseRestore.Hours()
		ccFail := b.State(SystemStateCCFail)
		b.Transition(okState, ccFail, laCC)
		b.Transition(ccFail, okState, muCC)
		downNames = append(downNames, SystemStateCCFail)
	}
	m, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("system model: %w", err)
	}
	return reward.Binary(m, downNames...)
}

// solverPool recycles solve contexts across Solve calls. The JSAS chains
// are tiny but solved in bulk (tables, sweeps, Monte-Carlo sampling), so
// reusing the dense scratch and warm-start caches removes nearly all
// per-solve allocation. Each borrowed Solver is used by one goroutine at a
// time, which is exactly the contract ctmc.Solver requires.
var solverPool = sync.Pool{New: func() any { return ctmc.NewSolver() }}

// Solve evaluates the full hierarchy for a configuration and returns the
// system-level measures. It draws a pooled solve context; callers that
// manage their own (e.g. per-worker) contexts should use SolveWith.
func Solve(cfg Config, p Params) (*SystemResult, error) {
	s := solverPool.Get().(*ctmc.Solver)
	defer solverPool.Put(s)
	return SolveWith(cfg, p, s)
}

// SolveWith evaluates the full hierarchy for a configuration using the
// caller-supplied solve context (which must not be shared across
// goroutines; pass nil to allocate per solve).
func SolveWith(cfg Config, p Params, s *ctmc.Solver) (*SystemResult, error) {
	top, err := Components(cfg, p)
	if err != nil {
		return nil, err
	}
	ev, err := hier.Evaluate(top, nil, hier.Options{Solve: ctmc.SolveOptions{Solver: s}})
	if err != nil {
		return nil, fmt.Errorf("solve %v: %w", cfg, err)
	}
	res := &SystemResult{
		Config:       cfg,
		Availability: ev.Result.Availability,
		System:       ev.Result,
	}
	res.YearlyDowntimeMinutes = ev.Result.YearlyDowntimeMinutes
	if ev.Result.FailureFrequency > 0 {
		res.MTBFHours = ev.Result.MTBFHours
	}
	if asEv := ev.Find("Appl Server"); asEv != nil {
		res.ASSubmodel = asEv.Result
	}
	if hadbEv := ev.Find("HADB Node Pair"); hadbEv != nil {
		res.HADBSubmodel = hadbEv.Result
	}
	// Downtime split by cause comes from the top-level state occupancy.
	topModel := ev.Structure.Model()
	if s, err := topModel.StateByName(SystemStateASFail); err == nil {
		res.DowntimeASMinutes = ev.Result.Pi[s] * reward.MinutesPerYear
	}
	if s, err := topModel.StateByName(SystemStateHADBFail); err == nil {
		res.DowntimeHADBMinutes = ev.Result.Pi[s] * reward.MinutesPerYear
	}
	if s, err := topModel.StateByName(SystemStateCCFail); err == nil {
		res.DowntimeCommonCauseMinutes = ev.Result.Pi[s] * reward.MinutesPerYear
	}
	return res, nil
}
