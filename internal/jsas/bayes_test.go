package jsas

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/backend"
	"repro/internal/hier"
)

// crossValidationTolerance bounds the allowed CTMC-vs-BN disagreement on
// the paper's configurations. The two compositions differ only in how the
// independent submodels are combined (series CTMC vs product of
// availabilities), a discrepancy of O(r_as·r_hadb) ≈ 1e-11; 1e-6 leaves
// three orders of headroom while still catching any structural mistake.
const crossValidationTolerance = 1e-6

// TestBayesCTMCCrossValidation is the verify-gated agreement suite: both
// backends must reproduce the paper's Table 2 availabilities for Config 1
// and Config 2 within tolerance, and must agree with each other on every
// Table 3 configuration.
func TestBayesCTMCCrossValidation(t *testing.T) {
	p := DefaultParams()
	paper := map[Config]float64{
		Config1: 0.9999933,
		Config2: 0.9999956,
	}
	for _, cfg := range Table3Configs() {
		ctmcRes, err := SolveBackend(context.Background(), cfg, p, backend.KindCTMC)
		if err != nil {
			t.Fatalf("%v ctmc: %v", cfg, err)
		}
		bayesRes, err := SolveBackend(context.Background(), cfg, p, backend.KindBayes)
		if err != nil {
			t.Fatalf("%v bayes: %v", cfg, err)
		}
		if diff := math.Abs(ctmcRes.Availability - bayesRes.Availability); diff > crossValidationTolerance {
			t.Errorf("%v: ctmc %.9f vs bayes %.9f (diff %.2g > %.2g)",
				cfg, ctmcRes.Availability, bayesRes.Availability, diff, crossValidationTolerance)
		}
		if want, ok := paper[cfg]; ok {
			if math.Abs(bayesRes.Availability-want) > 5e-7 {
				t.Errorf("%v: bayes availability %.7f, want paper value ~%.7f", cfg, bayesRes.Availability, want)
			}
		}
		if bayesRes.Backend != backend.KindBayes || ctmcRes.Backend != backend.KindCTMC {
			t.Errorf("%v: backend tags wrong: %v / %v", cfg, ctmcRes.Backend, bayesRes.Backend)
		}
	}
}

// TestClusterBackendsAgree cross-validates the quorum models where both
// are tractable: for independent replicas the product CTMC's stationary
// distribution factorizes, so ClusterProduct and ClusterBayes are both
// exact and must agree to solver tolerance.
func TestClusterBackendsAgree(t *testing.T) {
	p := DefaultParams()
	for _, q := range []ClusterQuorum{
		{Instances: 2, Quorum: 1},
		{Instances: 3, Quorum: 2},
		{Instances: 5, Quorum: 3},
		{Instances: 8, Quorum: 8},
	} {
		flat, err := ClusterProduct(p, q)
		if err != nil {
			t.Fatalf("%+v product: %v", q, err)
		}
		flatRes, err := solvePooled(flat)
		if err != nil {
			t.Fatalf("%+v product solve: %v", q, err)
		}
		net, err := ClusterBayes(p, q)
		if err != nil {
			t.Fatalf("%+v bayes: %v", q, err)
		}
		bayesRes, err := net.Solve(context.Background())
		if err != nil {
			t.Fatalf("%+v bayes solve: %v", q, err)
		}
		if diff := math.Abs(flatRes.Availability - bayesRes.Availability); diff > 1e-9 {
			t.Errorf("%d-of-%d: product %.12f vs bayes %.12f (diff %.2g)",
				q.Quorum, q.Instances, flatRes.Availability, bayesRes.Availability, diff)
		}
	}
}

// TestClusterBayesBeyondCTMC demonstrates the acceptance criterion: the
// flat CTMC refuses a 100-instance cluster (3^100 states, capped by
// hier.MaxProductStates) while the BN backend solves it exactly and
// matches the binomial closed form.
func TestClusterBayesBeyondCTMC(t *testing.T) {
	p := DefaultParams()
	q := ClusterQuorum{Instances: 100, Quorum: 90}
	if _, err := ClusterProduct(p, q); !errors.Is(err, hier.ErrBadComponent) {
		t.Fatalf("ClusterProduct err = %v, want ErrBadComponent (state cap)", err)
	}
	net, err := ClusterBayes(p, q)
	if err != nil {
		t.Fatalf("ClusterBayes: %v", err)
	}
	res, err := net.Solve(context.Background())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	inst, err := instanceStructure(p)
	if err != nil {
		t.Fatalf("instance: %v", err)
	}
	ir, err := solvePooled(inst)
	if err != nil {
		t.Fatalf("instance solve: %v", err)
	}
	want := 0.0
	pUp := ir.Availability
	for j := q.Quorum; j <= q.Instances; j++ {
		c := 1.0
		for i := 0; i < j; i++ {
			c = c * float64(q.Instances-i) / float64(i+1)
		}
		want += c * math.Pow(pUp, float64(j)) * math.Pow(1-pUp, float64(q.Instances-j))
	}
	if math.Abs(res.Availability-want) > 1e-9 {
		t.Fatalf("availability %.12f, want binomial %.12f", res.Availability, want)
	}
	if res.Size < 100 {
		t.Fatalf("Size = %d, want ≥ 100 BN variables", res.Size)
	}
}

// TestReplicationSweepMonotone checks the replication-factor sweep the
// CTMC backend cannot solve: fixing a 95%-quorum, availability must not
// decrease as instances are added in the sampled range.
func TestReplicationSweepMonotone(t *testing.T) {
	p := DefaultParams()
	prev := -1.0
	for _, n := range []int{20, 40, 60, 80, 100} {
		k := n * 9 / 10
		net, err := ClusterBayes(p, ClusterQuorum{Instances: n, Quorum: k})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		res, err := net.Solve(context.Background())
		if err != nil {
			t.Fatalf("n=%d solve: %v", n, err)
		}
		if res.Availability < prev {
			t.Fatalf("n=%d: availability %.12f dropped below previous %.12f", n, res.Availability, prev)
		}
		prev = res.Availability
	}
}

func TestSolveBackendValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := SolveBackend(context.Background(), Config1, p, backend.Kind("mystery")); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unknown backend err = %v, want ErrBadConfig", err)
	}
	if _, err := BayesModel(Config{ASInstances: 0}, p); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad config err = %v, want ErrBadConfig", err)
	}
	for _, q := range []ClusterQuorum{{0, 1}, {3, 0}, {3, 4}} {
		if err := q.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("%+v: err = %v, want ErrBadConfig", q, err)
		}
	}
}
