package jsas

import (
	"fmt"
	"time"

	"repro/internal/hier"
)

// IntervalResult reports a finite-mission availability analysis — the
// hierarchical interval-availability evaluation the paper cites as the
// companion RAScad capability (its reference [18]).
type IntervalResult struct {
	Config Config
	// Mission is the analyzed window length.
	Mission time.Duration
	// IntervalAvailability is the expected fraction of the mission spent
	// in a working state, starting from the fully working state.
	IntervalAvailability float64
	// SteadyStateAvailability is the long-run limit for comparison.
	SteadyStateAvailability float64
	// ExpectedDowntime is the expected cumulative downtime over the
	// mission.
	ExpectedDowntime time.Duration
}

// IntervalAvailability computes the expected availability of a JSAS
// configuration over a finite mission window, via transient analysis of
// the top-level hierarchical model (submodels reduced to equivalent rates,
// then uniformization on the 3-state system chain).
//
// Starting from the working state, interval availability exceeds the
// steady-state value and decays toward it as the mission grows — useful
// when provisioning for, e.g., a trading day or a holiday sale window.
func IntervalAvailability(cfg Config, p Params, mission time.Duration) (*IntervalResult, error) {
	if mission <= 0 {
		return nil, fmt.Errorf("mission %v: %w", mission, ErrBadConfig)
	}
	top, err := Components(cfg, p)
	if err != nil {
		return nil, err
	}
	ev, err := hier.Evaluate(top, nil, hier.Options{})
	if err != nil {
		return nil, fmt.Errorf("interval availability: %w", err)
	}
	structure := ev.Structure
	m := structure.Model()
	// Start in the Ok state.
	p0 := make([]float64, m.NumStates())
	okState, err := m.StateByName(SystemStateOk)
	if err != nil {
		return nil, fmt.Errorf("interval availability: %w", err)
	}
	p0[okState] = 1
	rewards := make([]float64, m.NumStates())
	for _, s := range m.States() {
		rewards[s] = structure.Rate(s)
	}
	ia, err := m.IntervalAvailability(p0, mission.Hours(), rewards)
	if err != nil {
		return nil, fmt.Errorf("interval availability: %w", err)
	}
	return &IntervalResult{
		Config:                  cfg,
		Mission:                 mission,
		IntervalAvailability:    ia,
		SteadyStateAvailability: ev.Result.Availability,
		ExpectedDowntime:        time.Duration((1 - ia) * float64(mission)),
	}, nil
}
