package jsas

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/sensitivity"
	"repro/internal/uncertainty"
)

func TestApplyOverrides(t *testing.T) {
	t.Parallel()
	base := DefaultParams()
	p, err := ApplyOverrides(base, map[string]float64{
		ParamASFailures:   20,
		ParamHADBFailures: 3,
		ParamOSFailures:   0.7,
		ParamHWFailures:   1.5,
		ParamTstartLong:   2.5,
		ParamFIR:          0.0015,
	})
	if err != nil {
		t.Fatalf("ApplyOverrides: %v", err)
	}
	if p.ASFailuresPerYear != 20 || p.HADBFailuresPerYear != 3 {
		t.Error("failure rates not applied")
	}
	// OS/HW overrides apply to both node types.
	if p.ASOSFailuresPerYear != 0.7 || p.HADBOSFailuresPerYear != 0.7 {
		t.Error("OS rate not applied to both tiers")
	}
	if p.ASHWFailuresPerYear != 1.5 || p.HADBHWFailuresPerYear != 1.5 {
		t.Error("HW rate not applied to both tiers")
	}
	if p.ASRestartLong != 150*time.Minute {
		t.Errorf("Tstart_long = %v, want 2.5h", p.ASRestartLong)
	}
	if p.FIR != 0.0015 {
		t.Errorf("FIR = %v", p.FIR)
	}
	// Base untouched.
	if base.ASFailuresPerYear != 50 {
		t.Error("ApplyOverrides mutated base")
	}
	if _, err := ApplyOverrides(base, map[string]float64{"bogus": 1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown name: err = %v", err)
	}
}

func TestPaperUncertaintyRangesMatchPaper(t *testing.T) {
	t.Parallel()
	ranges := PaperUncertaintyRanges()
	if len(ranges) != 6 {
		t.Fatalf("ranges = %d, want 6", len(ranges))
	}
	want := map[string][2]float64{
		ParamASFailures:   {10, 50},
		ParamHADBFailures: {1, 4},
		ParamOSFailures:   {0.5, 2},
		ParamHWFailures:   {0.5, 2},
		ParamTstartLong:   {0.5, 3},
		ParamFIR:          {0, 0.002},
	}
	for _, r := range ranges {
		w, ok := want[r.Name]
		if !ok {
			t.Errorf("unexpected range %q", r.Name)
			continue
		}
		if r.Low != w[0] || r.High != w[1] {
			t.Errorf("%s = [%g, %g], want [%g, %g]", r.Name, r.Low, r.High, w[0], w[1])
		}
	}
}

// TestFigure7Uncertainty reproduces the paper's Config 1 uncertainty
// analysis: mean yearly downtime ≈ 3.78 min with 80% CI ≈ (1.89, 6.02) and
// over 80% of systems below 5.25 min/yr. Monte-Carlo with a different RNG
// won't match exactly; tolerances reflect sampling noise at n=1000.
func TestFigure7Uncertainty(t *testing.T) {
	t.Parallel()
	res, err := uncertainty.Run(
		PaperUncertaintyRanges(),
		UncertaintySolver(Config1, DefaultParams()),
		uncertainty.Options{Samples: 1000, Seed: 2004},
	)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(res.Summary.Mean-3.78) > 0.45 {
		t.Errorf("mean = %.2f min, paper 3.78", res.Summary.Mean)
	}
	ci := res.CIs[0.80]
	if math.Abs(ci.Low-1.89) > 0.5 || math.Abs(ci.High-6.02) > 0.8 {
		t.Errorf("80%% CI = (%.2f, %.2f), paper (1.89, 6.02)", ci.Low, ci.High)
	}
	if frac := res.FractionBelow(5.25); frac < 0.78 {
		t.Errorf("fraction below 5.25 min = %.3f, paper > 0.80", frac)
	}
}

// TestFigure8Uncertainty reproduces the Config 2 analysis: mean ≈ 2.99 min,
// 80% CI ≈ (1.01, 5.19), over 90% below 5.25 min/yr.
func TestFigure8Uncertainty(t *testing.T) {
	t.Parallel()
	res, err := uncertainty.Run(
		PaperUncertaintyRanges(),
		UncertaintySolver(Config2, DefaultParams()),
		uncertainty.Options{Samples: 1000, Seed: 2004},
	)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(res.Summary.Mean-2.99) > 0.4 {
		t.Errorf("mean = %.2f min, paper 2.99", res.Summary.Mean)
	}
	ci := res.CIs[0.80]
	if math.Abs(ci.Low-1.01) > 0.4 || math.Abs(ci.High-5.19) > 0.8 {
		t.Errorf("80%% CI = (%.2f, %.2f), paper (1.01, 5.19)", ci.Low, ci.High)
	}
	if frac := res.FractionBelow(5.25); frac < 0.85 {
		t.Errorf("fraction below 5.25 min = %.3f, paper > 0.90", frac)
	}
}

// TestFigure5SweepShape reproduces the Figure 5 sweep: Config 1
// availability declines monotonically in Tstart_long and crosses below
// five nines between 2 and 3 hours.
func TestFigure5SweepShape(t *testing.T) {
	t.Parallel()
	pts, err := sensitivity.Sweep(0.5, 3, 10, TstartLongSweepSolver(Config1, DefaultParams()))
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Availability >= pts[i-1].Availability {
			t.Errorf("availability not monotone at step %d", i)
		}
	}
	cross, ok := sensitivity.CrossingBelow(pts, 0.99999)
	if !ok {
		t.Fatal("no five-nines crossing found for Config 1")
	}
	if cross < 2.0 || cross > 3.0 {
		t.Errorf("crossing at %.2f h, paper ≈ 2.5 h", cross)
	}
}

// TestFigure6SweepShape: Config 2 stays above 99.9995% across the sweep
// and is nearly flat (the paper's 10⁻⁹-scale axis).
func TestFigure6SweepShape(t *testing.T) {
	t.Parallel()
	pts, err := sensitivity.Sweep(0.5, 3, 10, TstartLongSweepSolver(Config2, DefaultParams()))
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	for _, p := range pts {
		if p.Availability < 0.999995 {
			t.Errorf("availability %.9f at %.2f h below 99.9995%%", p.Availability, p.Value)
		}
	}
	if d := sensitivity.MaxDelta(pts); d > 5e-9 {
		t.Errorf("MaxDelta = %.3g, want < 5e-9 (paper's flat curve)", d)
	}
}

// TestSweepSolverGeneralizes: sweeping La_as over the §7 range moves
// downtime monotonically; unknown parameters error.
func TestSweepSolverGeneralizes(t *testing.T) {
	t.Parallel()
	pts, err := sensitivity.Sweep(10, 50, 4, SweepSolver(Config1, DefaultParams(), ParamASFailures))
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].YearlyDowntimeMinutes <= pts[i-1].YearlyDowntimeMinutes {
			t.Errorf("downtime not increasing in La_as at step %d", i)
		}
	}
	if _, _, err := SweepSolver(Config1, DefaultParams(), "bogus")(1); err == nil {
		t.Error("unknown parameter accepted")
	}
}

// TestSweepFIR: downtime grows linearly in FIR for Config 2 (FIR drives
// the dominant HADB pair-loss path).
func TestSweepFIR(t *testing.T) {
	t.Parallel()
	pts, err := sensitivity.Sweep(0.0005, 0.002, 3, SweepSolver(Config2, DefaultParams(), ParamFIR))
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	first := pts[1].YearlyDowntimeMinutes - pts[0].YearlyDowntimeMinutes
	last := pts[3].YearlyDowntimeMinutes - pts[2].YearlyDowntimeMinutes
	if first <= 0 || math.Abs(first-last) > 0.05*first {
		t.Errorf("FIR response not linear: steps %v vs %v", first, last)
	}
}

// TestUncertaintyCorrelations: the Monte-Carlo sample itself reveals the
// variance drivers — La_as dominates Config 1's downtime spread while
// Tstart_long is irrelevant for Config 2's.
func TestUncertaintyCorrelations(t *testing.T) {
	t.Parallel()
	run := func(cfg Config) map[string]float64 {
		res, err := uncertainty.Run(
			PaperUncertaintyRanges(),
			UncertaintySolver(cfg, DefaultParams()),
			uncertainty.Options{Samples: 600, Seed: 9},
		)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.Correlations()
	}
	c1 := run(Config1)
	if c1[ParamASFailures] < 0.3 {
		t.Errorf("Config1 corr(La_as) = %.3f, want strong positive", c1[ParamASFailures])
	}
	if c1[ParamTstartLong] < 0.1 {
		t.Errorf("Config1 corr(Tstart_long) = %.3f, want positive", c1[ParamTstartLong])
	}
	c2 := run(Config2)
	if c2[ParamFIR] < 0.3 {
		t.Errorf("Config2 corr(FIR) = %.3f, want strong positive", c2[ParamFIR])
	}
	if math.Abs(c2[ParamTstartLong]) > 0.1 {
		t.Errorf("Config2 corr(Tstart_long) = %.3f, want ~0", c2[ParamTstartLong])
	}
}
