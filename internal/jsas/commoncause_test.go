package jsas

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/backend"
)

// TestCommonCauseBackendsAgree cross-validates the beta-factor extension:
// the CTMC's CC_Fail star state and the BN's noisy-OR leak must agree on
// every Table 3 configuration across a spread of beta values. The two
// compositions differ only at second order in the rates (~1e-11 for the
// paper's numbers), so the shared 1e-6 tolerance applies.
func TestCommonCauseBackendsAgree(t *testing.T) {
	for _, beta := range []float64{0.01, 0.05, 0.1, 0.3} {
		p := DefaultParams()
		p.Beta = beta
		for _, cfg := range Table3Configs() {
			ctmcRes, err := SolveBackend(context.Background(), cfg, p, backend.KindCTMC)
			if err != nil {
				t.Fatalf("beta=%v %v ctmc: %v", beta, cfg, err)
			}
			bayesRes, err := SolveBackend(context.Background(), cfg, p, backend.KindBayes)
			if err != nil {
				t.Fatalf("beta=%v %v bayes: %v", beta, cfg, err)
			}
			if diff := math.Abs(ctmcRes.Availability - bayesRes.Availability); diff > crossValidationTolerance {
				t.Errorf("beta=%v %v: ctmc %.12f vs bayes %.12f (diff %.2g)",
					beta, cfg, ctmcRes.Availability, bayesRes.Availability, diff)
			}
		}
	}
}

// TestCommonCauseZeroBetaIsBaseline pins back-compat: Beta = 0 must
// reproduce the pre-extension model exactly — same availability, same
// downtime decomposition, no CC_Fail state.
func TestCommonCauseZeroBetaIsBaseline(t *testing.T) {
	base, err := Solve(Config1, DefaultParams())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	p := DefaultParams()
	p.Beta = 0
	got, err := Solve(Config1, p)
	if err != nil {
		t.Fatalf("Solve beta=0: %v", err)
	}
	if got.Availability != base.Availability || got.YearlyDowntimeMinutes != base.YearlyDowntimeMinutes {
		t.Errorf("beta=0 result differs from baseline: %.12f vs %.12f", got.Availability, base.Availability)
	}
	if got.DowntimeCommonCauseMinutes != 0 {
		t.Errorf("DowntimeCommonCauseMinutes = %v, want 0 at beta=0", got.DowntimeCommonCauseMinutes)
	}
}

// TestCommonCauseLowersAvailability: adding a common-cause failure mode
// can only hurt, monotonically in beta, and the lost availability shows
// up as attributed common-cause downtime.
func TestCommonCauseLowersAvailability(t *testing.T) {
	prev, err := Solve(Config1, DefaultParams())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for _, beta := range []float64{0.05, 0.1, 0.2, 0.4} {
		p := DefaultParams()
		p.Beta = beta
		res, err := Solve(Config1, p)
		if err != nil {
			t.Fatalf("beta=%v: %v", beta, err)
		}
		if res.Availability >= prev.Availability {
			t.Errorf("beta=%v: availability %.12f not below %.12f", beta, res.Availability, prev.Availability)
		}
		if res.DowntimeCommonCauseMinutes <= prev.DowntimeCommonCauseMinutes {
			t.Errorf("beta=%v: CC downtime %.4f not above %.4f",
				beta, res.DowntimeCommonCauseMinutes, prev.DowntimeCommonCauseMinutes)
		}
		sum := res.DowntimeASMinutes + res.DowntimeHADBMinutes + res.DowntimeCommonCauseMinutes
		if math.Abs(sum-res.YearlyDowntimeMinutes) > 1e-6 {
			t.Errorf("beta=%v: downtime decomposition %.6f != total %.6f", beta, sum, res.YearlyDowntimeMinutes)
		}
		prev = res
	}
}

func TestCommonCauseParamValidation(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Beta = -0.1 },
		func(p *Params) { p.Beta = 1 },
		func(p *Params) { p.Beta = 1.5 },
		func(p *Params) { p.Beta = 0.1; p.CommonCauseRestore = 0 },
		func(p *Params) { p.Beta = 0.1; p.CommonCauseRestore = -time.Hour },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid common-cause params %+v", i, p)
		}
	}
	// Beta > 0 with a positive restore rate is valid.
	p := DefaultParams()
	p.Beta = 0.1
	if err := p.Validate(); err != nil {
		t.Errorf("valid beta rejected: %v", err)
	}
}
