package jsas

import (
	"fmt"
	"time"

	"repro/internal/ctmc"
	"repro/internal/reward"
)

// UpgradePolicy describes scheduled online upgrades performed cluster-by-
// cluster — the deployment practice the paper's §4 describes ("online
// upgrades ... can be orchestrated by the administrator, using single or
// dual cluster deployments") but leaves out of its single-cluster model.
type UpgradePolicy struct {
	// PerYear is the number of upgrade campaigns per year per cluster
	// (application, AS, OS, or hardware updates).
	PerYear float64
	// Window is the duration a cluster is offline per upgrade.
	Window time.Duration
}

// Validate checks the policy.
func (u UpgradePolicy) Validate() error {
	if u.PerYear < 0 {
		return fmt.Errorf("upgrade rate %g < 0: %w", u.PerYear, ErrBadConfig)
	}
	if u.PerYear > 0 && u.Window <= 0 {
		return fmt.Errorf("upgrade window %v: %w", u.Window, ErrBadConfig)
	}
	return nil
}

// DualClusterResult compares deployment strategies under an upgrade
// policy.
type DualClusterResult struct {
	// SingleCluster is the availability of one cluster absorbing the
	// upgrade windows as planned downtime.
	SingleCluster float64
	// SingleClusterDowntimeMinutes is its total yearly downtime
	// (unplanned + planned).
	SingleClusterDowntimeMinutes float64
	// DualCluster is the availability of two clusters behind a global
	// load balancer, upgraded one at a time: the system is down only when
	// both clusters are down simultaneously.
	DualCluster float64
	// DualClusterDowntimeMinutes is the dual deployment's yearly
	// downtime.
	DualClusterDowntimeMinutes float64
}

// SolveDualCluster evaluates the single- vs dual-cluster upgrade
// strategies for a configuration. Each cluster is first reduced to its
// equivalent (λ, μ) via the standard hierarchy; upgrades add a planned
// outage mode (rate PerYear, duration Window). The dual deployment
// composes two independent clusters and is down only when both are.
//
// The paper's conclusion is implicit but follows from its redundancy
// arguments: a dual-cluster deployment makes planned upgrade downtime
// (which dominates a single cluster's budget) essentially invisible.
func SolveDualCluster(cfg Config, p Params, upgrade UpgradePolicy) (*DualClusterResult, error) {
	if err := upgrade.Validate(); err != nil {
		return nil, err
	}
	base, err := Solve(cfg, p)
	if err != nil {
		return nil, err
	}
	laEq := base.System.LambdaEq
	muEq := base.System.MuEq
	cluster, err := clusterWithUpgrades(laEq, muEq, upgrade)
	if err != nil {
		return nil, err
	}
	single, err := cluster.Solve(ctmc.SolveOptions{})
	if err != nil {
		return nil, fmt.Errorf("dual cluster: %w", err)
	}
	res := &DualClusterResult{
		SingleCluster:                single.Availability,
		SingleClusterDowntimeMinutes: single.YearlyDowntimeMinutes,
	}
	// Dual deployment: independent clusters; system up if either is up.
	// Upgrades are coordinated (never simultaneous), which we model
	// conservatively as independent upgrade windows — coordination only
	// helps.
	prod, err := productOfTwo(cluster)
	if err != nil {
		return nil, err
	}
	dual, err := prod.Solve(ctmc.SolveOptions{})
	if err != nil {
		return nil, fmt.Errorf("dual cluster: %w", err)
	}
	res.DualCluster = dual.Availability
	res.DualClusterDowntimeMinutes = dual.YearlyDowntimeMinutes
	return res, nil
}

// clusterWithUpgrades builds a 3-state cluster model: Up, an unplanned
// Down (equivalent rates), and a planned Upgrade outage.
func clusterWithUpgrades(laEq, muEq float64, upgrade UpgradePolicy) (*reward.Structure, error) {
	b := ctmc.NewBuilder()
	up := b.State("Up")
	down := b.State("Down")
	downNames := []string{"Down"}
	b.Transition(up, down, laEq)
	b.Transition(down, up, muEq)
	if upgrade.PerYear > 0 {
		upg := b.State("Upgrade")
		b.Transition(up, upg, upgrade.PerYear/hoursPerYear)
		b.Transition(upg, up, 1/upgrade.Window.Hours())
		downNames = append(downNames, "Upgrade")
	}
	m, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("cluster with upgrades: %w", err)
	}
	s, err := reward.Binary(m, downNames...)
	if err != nil {
		return nil, fmt.Errorf("cluster with upgrades: %w", err)
	}
	return s, nil
}

// productOfTwo composes two independent copies of a cluster; the composite
// is up when at least one copy is up.
func productOfTwo(cluster *reward.Structure) (*reward.Structure, error) {
	m := cluster.Model()
	n := m.NumStates()
	b := ctmc.NewBuilder()
	idx := func(i, j int) ctmc.State {
		return ctmc.State(i*n + j)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.State(m.Name(ctmc.State(i)) + "|" + m.Name(ctmc.State(j)))
		}
	}
	for _, tr := range m.Transitions() {
		for other := 0; other < n; other++ {
			// First copy moves.
			b.Transition(idx(int(tr.From), other), idx(int(tr.To), other), tr.Rate)
			// Second copy moves.
			b.Transition(idx(other, int(tr.From)), idx(other, int(tr.To)), tr.Rate)
		}
	}
	model, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("dual product: %w", err)
	}
	rates := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if cluster.Rate(ctmc.State(i)) > 0 || cluster.Rate(ctmc.State(j)) > 0 {
				rates[i*n+j] = 1
			}
		}
	}
	s, err := reward.New(model, rates)
	if err != nil {
		return nil, fmt.Errorf("dual product: %w", err)
	}
	return s, nil
}
