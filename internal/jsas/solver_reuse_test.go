package jsas

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/ctmc"
)

// TestWarmStartAgreesWithColdOnJSASChains sweeps a parameter across nearby
// values and solves the HADB node-pair submodel iteratively twice per
// point: cold (a fresh solve) and warm (through one shared Solver that
// carries the previous point's π). The stationary distributions must agree
// to solver tolerance — a stale warm-start seed may only cost sweeps,
// never move the answer. (The AS submodel is not used here: Gauss–Seidel
// does not converge on it at default tolerances, with or without warm
// starts, which is why the auto method solves those chains densely.)
func TestWarmStartAgreesWithColdOnJSASChains(t *testing.T) {
	s := ctmc.NewSolver()
	sawWarm := false
	for i := 0; i < 6; i++ {
		p := DefaultParams()
		p.HADBRestartLong = time.Duration(float64(15*time.Minute) * (1 + 0.2*float64(i)))
		st, err := BuildHADBPair(p)
		if err != nil {
			t.Fatal(err)
		}
		var warmDiag ctmc.Diagnostics
		warm, err := st.Model().SteadyState(ctmc.SolveOptions{
			Method: ctmc.MethodGaussSeidel, Solver: s, Diag: &warmDiag,
		})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := st.Model().SteadyState(ctmc.SolveOptions{Method: ctmc.MethodGaussSeidel})
		if err != nil {
			t.Fatal(err)
		}
		for j := range warm {
			if d := math.Abs(warm[j] - cold[j]); d > 1e-10 {
				t.Fatalf("point %d: warm and cold disagree at state %d by %g", i, j, d)
			}
		}
		if i > 0 && warmDiag.WarmStart {
			sawWarm = true
		}
	}
	if !sawWarm {
		t.Error("no solve after the first was warm-started; Solver cache not engaged")
	}
}

// TestSolveWithMatchesPooledSolve checks the pooled Solve front door and an
// explicit per-caller context produce bit-identical system results.
func TestSolveWithMatchesPooledSolve(t *testing.T) {
	p := DefaultParams()
	pooled, err := Solve(Config1, p)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := SolveWith(Config1, p, ctmc.NewSolver())
	if err != nil {
		t.Fatal(err)
	}
	if pooled.Availability != explicit.Availability ||
		pooled.YearlyDowntimeMinutes != explicit.YearlyDowntimeMinutes ||
		pooled.MTBFHours != explicit.MTBFHours {
		t.Fatalf("pooled %+v != explicit %+v", pooled, explicit)
	}
}

// TestConcurrentSolvesWithPerWorkerSolvers runs full JSAS hierarchy solves
// from many goroutines, each with its own Solver (and, through Solve, the
// shared sync.Pool) — the contract the parallel sweep and Monte-Carlo
// drivers rely on. Meant to run under -race.
func TestConcurrentSolvesWithPerWorkerSolvers(t *testing.T) {
	p := DefaultParams()
	want, err := Solve(Config1, p)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := ctmc.NewSolver()
			for rep := 0; rep < 10; rep++ {
				var res *SystemResult
				var err error
				if rep%2 == 0 {
					res, err = SolveWith(Config1, p, s)
				} else {
					res, err = Solve(Config1, p) // pooled path
				}
				if err != nil {
					errs <- err
					return
				}
				if res.Availability != want.Availability {
					t.Errorf("worker %d rep %d: availability %v != %v", w, rep, res.Availability, want.Availability)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
