package jsas

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestDualClusterNoUpgradesMatchesBase(t *testing.T) {
	t.Parallel()
	base, err := Solve(Config1, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveDualCluster(Config1, DefaultParams(), UpgradePolicy{})
	if err != nil {
		t.Fatalf("SolveDualCluster: %v", err)
	}
	// Without upgrades the single-cluster branch is the base system (via
	// its exact two-state reduction).
	if math.Abs(res.SingleCluster-base.Availability) > 1e-12 {
		t.Errorf("single = %.12f, base %.12f", res.SingleCluster, base.Availability)
	}
	// The dual deployment is strictly better: unavailability squares.
	wantDual := 1 - (1-base.Availability)*(1-base.Availability)
	if math.Abs(res.DualCluster-wantDual) > 1e-12 {
		t.Errorf("dual = %.15f, want %.15f", res.DualCluster, wantDual)
	}
}

// TestDualClusterUpgradesDominateSingle: with monthly 1-hour upgrade
// windows, a single cluster loses 12 h/yr (≈ 720 min) while the dual
// deployment stays in the minutes-per-year regime — the §4 motivation for
// dual-cluster orchestration.
func TestDualClusterUpgradesDominateSingle(t *testing.T) {
	t.Parallel()
	res, err := SolveDualCluster(Config1, DefaultParams(), UpgradePolicy{
		PerYear: 12,
		Window:  time.Hour,
	})
	if err != nil {
		t.Fatalf("SolveDualCluster: %v", err)
	}
	if res.SingleClusterDowntimeMinutes < 700 || res.SingleClusterDowntimeMinutes > 740 {
		t.Errorf("single downtime = %.1f min/yr, want ≈ 723 (12 h planned + 3.5 unplanned)",
			res.SingleClusterDowntimeMinutes)
	}
	if res.DualClusterDowntimeMinutes > 5 {
		t.Errorf("dual downtime = %.2f min/yr, want minutes-scale", res.DualClusterDowntimeMinutes)
	}
	if res.DualCluster <= res.SingleCluster {
		t.Error("dual deployment should beat single")
	}
	// Planned downtime dominates the single cluster: > 99% of its budget.
	if res.SingleClusterDowntimeMinutes < 100*3.5 {
		t.Errorf("planned downtime should dominate: %.1f", res.SingleClusterDowntimeMinutes)
	}
}

func TestDualClusterValidation(t *testing.T) {
	t.Parallel()
	if _, err := SolveDualCluster(Config1, DefaultParams(), UpgradePolicy{PerYear: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative rate: err = %v", err)
	}
	if _, err := SolveDualCluster(Config1, DefaultParams(), UpgradePolicy{PerYear: 4}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero window: err = %v", err)
	}
	if _, err := SolveDualCluster(Config{}, DefaultParams(), UpgradePolicy{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad config: err = %v", err)
	}
}
