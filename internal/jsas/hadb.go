package jsas

import (
	"fmt"

	"repro/internal/ctmc"
	"repro/internal/reward"
)

// HADB node-pair model state names (Figure 3 of the paper).
const (
	HADBStateOk           = "Ok"
	HADBStateRestartShort = "RestartShort"
	HADBStateRestartLong  = "RestartLong"
	HADBStateRepair       = "Repair"
	HADBStateMaintenance  = "Maintenance"
	HADBStateDown         = "2_Down"
)

// BuildHADBPair constructs the Markov reward model of one HADB mirrored
// node pair, exactly as in Figure 3:
//
//   - From Ok, a node failure of class x (HADB software, OS, HW) occurs at
//     rate 2·λ_x; with probability 1−FIR the pair enters the matching
//     recovery state (RestartShort, RestartLong, Repair), with probability
//     FIR the recovery is imperfect and the pair fails outright (2_Down).
//   - Scheduled maintenance enters Maintenance at rate La_mnt and switches
//     back after Tmnt.
//   - In every single-node state the surviving node fails at the
//     workload-accelerated rate Acc·λ, losing the pair (2_Down).
//   - 2_Down is repaired by human intervention at rate 1/Trestore.
//
// All recovery and maintenance states carry reward 1 (one node still
// serves data); only 2_Down is a failure state.
func BuildHADBPair(p Params) (*reward.Structure, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	laHADB := p.HADBFailuresPerYear / hoursPerYear
	laOS := p.HADBOSFailuresPerYear / hoursPerYear
	laHW := p.HADBHWFailuresPerYear / hoursPerYear
	la := p.hadbNodeFailurePerHour()
	laMnt := p.MaintenancePerYear / hoursPerYear
	acc := p.Acceleration

	b := ctmc.NewBuilder()
	ok := b.State(HADBStateOk)
	rs := b.State(HADBStateRestartShort)
	rl := b.State(HADBStateRestartLong)
	rep := b.State(HADBStateRepair)
	mnt := b.State(HADBStateMaintenance)
	down := b.State(HADBStateDown)

	b.Transition(ok, rs, 2*laHADB*(1-p.FIR))
	b.Transition(ok, rl, 2*laOS*(1-p.FIR))
	b.Transition(ok, rep, 2*laHW*(1-p.FIR))
	b.Transition(ok, down, 2*la*p.FIR)
	b.Transition(ok, mnt, laMnt)

	b.Transition(rs, ok, 1/p.HADBRestartShort.Hours())
	b.Transition(rl, ok, 1/p.HADBRestartLong.Hours())
	b.Transition(rep, ok, 1/p.HADBRepair.Hours())
	b.Transition(mnt, ok, 1/p.MaintenanceSwitchover.Hours())

	for _, s := range []ctmc.State{rs, rl, rep, mnt} {
		b.Transition(s, down, acc*la)
	}
	b.Transition(down, ok, 1/p.HADBRestore.Hours())

	m, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("HADB pair model: %w", err)
	}
	s, err := reward.Binary(m, HADBStateDown)
	if err != nil {
		return nil, fmt.Errorf("HADB pair model: %w", err)
	}
	return s, nil
}
